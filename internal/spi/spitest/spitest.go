// Package spitest is the executable contract of the storage SPI: a
// conformance suite any spi.Store implementation must pass before the
// engine will run correctly over it. Run it from a backend's tests as
//
//	func TestConformance(t *testing.T) {
//		spitest.Run(t, func() spi.Store { return NewStore() })
//	}
//
// The suite exercises everything the scheduler relies on — CRUD with exact
// pre-image capture, the sentinel errors, secondary-index ordering, and the
// full version-chain protocol behind the lock-free read tiers (seeding,
// publication, as-of resolution, pruning) — but deliberately nothing more:
// anything not tested here is not part of the contract, and a backend is
// free to implement it any way it likes. Both bundled backends (storage,
// memstore) pass this suite verbatim.
package spitest

import (
	"errors"
	"fmt"
	"testing"

	"accdb/internal/spi"
)

// Run executes the full conformance suite, opening a fresh Store per
// subtest through open.
func Run(t *testing.T, open func() spi.Store) {
	t.Helper()
	tests := []struct {
		name string
		fn   func(t *testing.T, s spi.Store)
	}{
		{"StoreBasics", testStoreBasics},
		{"CRUD", testCRUD},
		{"PreImages", testPreImages},
		{"Apply", testApply},
		{"Scan", testScan},
		{"Index", testIndex},
		{"IndexRange", testIndexRange},
		{"VersionSeed", testVersionSeed},
		{"VersionPublish", testVersionPublish},
		{"VersionTombstone", testVersionTombstone},
		{"ScanAsOf", testScanAsOf},
		{"IndexScanAsOf", testIndexScanAsOf},
		{"PruneVersions", testPruneVersions},
		{"ResetVersions", testResetVersions},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) { tc.fn(t, open()) })
	}
}

// itemsSchema is the suite's workhorse relation.
func itemsSchema() *spi.Schema {
	return spi.MustSchema("items", []spi.Column{
		{Name: "id", Kind: spi.KindInt},
		{Name: "grp", Kind: spi.KindInt},
		{Name: "name", Kind: spi.KindString},
	}, "id")
}

func mkTable(t *testing.T, s spi.Store) spi.Table {
	t.Helper()
	tab, err := s.Create(itemsSchema())
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	return tab
}

func row(id, grp int64, name string) spi.Row {
	return spi.Row{spi.I64(id), spi.I64(grp), spi.Str(name)}
}

func pk(id int64) spi.Key { return spi.EncodeKey(spi.I64(id)) }

func insert(t *testing.T, tab spi.Table, rows ...spi.Row) {
	t.Helper()
	for _, r := range rows {
		if err := tab.Insert(r); err != nil {
			t.Fatalf("Insert(%v): %v", r, err)
		}
	}
}

func testStoreBasics(t *testing.T, s spi.Store) {
	if got := s.Table("items"); got != nil {
		t.Fatalf("Table on empty store = %#v, want untyped nil", got)
	}
	tab := mkTable(t, s)
	if _, err := s.Create(itemsSchema()); err == nil {
		t.Fatal("Create with duplicate name succeeded")
	}
	if got := s.Table("items"); got != tab {
		t.Fatalf("Table(items) = %#v, want the created table", got)
	}
	if got := s.Table("nope"); got != nil {
		// A typed-nil pointer in the interface is the classic adapter bug:
		// it compares unequal to nil and panics on first use.
		t.Fatalf("Table(nope) = %#v, want untyped nil", got)
	}
	names := s.Names()
	if len(names) != 1 || names[0] != "items" {
		t.Fatalf("Names() = %v, want [items]", names)
	}
	if tab.Schema().Name != "items" {
		t.Fatalf("Schema().Name = %q", tab.Schema().Name)
	}
}

func testCRUD(t *testing.T, s spi.Store) {
	tab := mkTable(t, s)
	insert(t, tab, row(1, 10, "ann"), row(2, 10, "bob"))
	if n := tab.Len(); n != 2 {
		t.Fatalf("Len = %d, want 2", n)
	}

	if err := tab.Insert(row(1, 99, "dup")); !errors.Is(err, spi.ErrDuplicate) {
		t.Fatalf("duplicate Insert: err = %v, want ErrDuplicate", err)
	}
	got, err := tab.Get(pk(1))
	if err != nil {
		t.Fatalf("Get(1): %v", err)
	}
	if !got.Equal(row(1, 10, "ann")) {
		t.Fatalf("Get(1) = %v", got)
	}
	// Returned rows are copies the caller owns.
	got[2] = spi.Str("mutated")
	if again, _ := tab.Get(pk(1)); !again.Equal(row(1, 10, "ann")) {
		t.Fatalf("Get returned an aliased row: table now has %v", again)
	}
	if _, err := tab.Get(pk(9)); !errors.Is(err, spi.ErrNotFound) {
		t.Fatalf("Get(absent): err = %v, want ErrNotFound", err)
	}
	if !tab.Exists(pk(2)) || tab.Exists(pk(9)) {
		t.Fatal("Exists wrong")
	}

	if _, err := tab.Update(pk(1), row(7, 10, "ann")); err == nil {
		t.Fatal("Update changing the primary key succeeded")
	}
	if _, err := tab.Update(pk(9), row(9, 0, "x")); !errors.Is(err, spi.ErrNotFound) {
		t.Fatalf("Update(absent): err = %v, want ErrNotFound", err)
	}
	if _, err := tab.Delete(pk(9)); !errors.Is(err, spi.ErrNotFound) {
		t.Fatalf("Delete(absent): err = %v, want ErrNotFound", err)
	}
	if _, err := tab.Delete(pk(2)); err != nil {
		t.Fatalf("Delete(2): %v", err)
	}
	if tab.Len() != 1 || tab.Exists(pk(2)) {
		t.Fatal("Delete did not remove the row")
	}
}

// Pre-image capture must be exact: the scheduler's undo logging and version
// publication both depend on Update/Delete returning the image that was
// stored, not the one passed in.
func testPreImages(t *testing.T, s spi.Store) {
	tab := mkTable(t, s)
	insert(t, tab, row(1, 10, "v0"))
	old, err := tab.Update(pk(1), row(1, 10, "v1"))
	if err != nil {
		t.Fatalf("Update: %v", err)
	}
	if !old.Equal(row(1, 10, "v0")) {
		t.Fatalf("Update pre-image = %v, want v0", old)
	}
	old, err = tab.Delete(pk(1))
	if err != nil {
		t.Fatalf("Delete: %v", err)
	}
	if !old.Equal(row(1, 10, "v1")) {
		t.Fatalf("Delete pre-image = %v, want v1", old)
	}
}

func testApply(t *testing.T, s spi.Store) {
	tab := mkTable(t, s)
	tab.Apply(pk(1), row(1, 10, "redo")) // upsert with no prior row
	if got, _ := tab.Get(pk(1)); !got.Equal(row(1, 10, "redo")) {
		t.Fatalf("Apply upsert: Get = %v", got)
	}
	tab.Apply(pk(1), row(1, 11, "redo2")) // overwrite
	if got, _ := tab.Get(pk(1)); !got.Equal(row(1, 11, "redo2")) {
		t.Fatalf("Apply overwrite: Get = %v", got)
	}
	tab.Apply(pk(1), nil) // delete
	if tab.Exists(pk(1)) {
		t.Fatal("Apply(nil) did not delete")
	}
	tab.Apply(pk(2), nil) // deleting an absent key is a no-op
	if tab.Len() != 0 {
		t.Fatalf("Len = %d, want 0", tab.Len())
	}
}

func testScan(t *testing.T, s spi.Store) {
	tab := mkTable(t, s)
	insert(t, tab, row(1, 1, "a"), row(2, 1, "b"), row(3, 2, "c"))
	seen := map[int64]bool{}
	tab.Scan(func(_ spi.Key, r spi.Row) bool {
		seen[r[0].Int64()] = true
		return true
	})
	if len(seen) != 3 {
		t.Fatalf("Scan visited %v, want 3 rows", seen)
	}
	n := 0
	tab.Scan(func(spi.Key, spi.Row) bool { n++; return false })
	if n != 1 {
		t.Fatalf("Scan ignored early stop: visited %d", n)
	}
}

func testIndex(t *testing.T, s spi.Store) {
	tab := mkTable(t, s)
	// Insert before AddIndex: the index must backfill.
	insert(t, tab, row(3, 20, "c"), row(1, 10, "a"))
	if err := tab.AddIndex(spi.IndexDef{Name: "by_grp", Columns: []string{"grp"}}); err != nil {
		t.Fatalf("AddIndex: %v", err)
	}
	if err := tab.AddIndex(spi.IndexDef{Name: "bad", Columns: []string{"nope"}}); err == nil {
		t.Fatal("AddIndex over a missing column succeeded")
	}
	// Insert after: the index must be maintained.
	insert(t, tab, row(2, 10, "b"), row(4, 30, "d"))

	var ids []int64
	err := tab.IndexScan("by_grp", []spi.Value{spi.I64(10)}, func(_ spi.Key, r spi.Row) bool {
		ids = append(ids, r[0].Int64())
		return true
	})
	if err != nil {
		t.Fatalf("IndexScan: %v", err)
	}
	// Ties on the indexed columns break by primary key.
	if fmt.Sprint(ids) != "[1 2]" {
		t.Fatalf("IndexScan(grp=10) = %v, want [1 2]", ids)
	}
	if err := tab.IndexScan("nope", nil, func(spi.Key, spi.Row) bool { return true }); err == nil {
		t.Fatal("IndexScan over a missing index succeeded")
	}

	// Update moving a row across index values must move its entry.
	if _, err := tab.Update(pk(2), row(2, 30, "b")); err != nil {
		t.Fatalf("Update: %v", err)
	}
	ids = nil
	tab.IndexScan("by_grp", []spi.Value{spi.I64(30)}, func(_ spi.Key, r spi.Row) bool {
		ids = append(ids, r[0].Int64())
		return true
	})
	if fmt.Sprint(ids) != "[2 4]" {
		t.Fatalf("IndexScan(grp=30) after move = %v, want [2 4]", ids)
	}
	// Delete must remove the entry.
	if _, err := tab.Delete(pk(4)); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	ids = nil
	tab.IndexScan("by_grp", []spi.Value{spi.I64(30)}, func(_ spi.Key, r spi.Row) bool {
		ids = append(ids, r[0].Int64())
		return true
	})
	if fmt.Sprint(ids) != "[2]" {
		t.Fatalf("IndexScan(grp=30) after delete = %v, want [2]", ids)
	}
}

func testIndexRange(t *testing.T, s spi.Store) {
	tab := mkTable(t, s)
	if err := tab.AddIndex(spi.IndexDef{Name: "by_grp", Columns: []string{"grp"}}); err != nil {
		t.Fatalf("AddIndex: %v", err)
	}
	for i := int64(1); i <= 5; i++ {
		insert(t, tab, row(i, i*10, "r"))
	}
	var ids []int64
	collect := func(_ spi.Key, r spi.Row) bool { ids = append(ids, r[0].Int64()); return true }

	// [20, 40) excludes the hi bound.
	if err := tab.IndexRange("by_grp", []spi.Value{spi.I64(20)}, []spi.Value{spi.I64(40)}, collect); err != nil {
		t.Fatalf("IndexRange: %v", err)
	}
	if fmt.Sprint(ids) != "[2 3]" {
		t.Fatalf("IndexRange[20,40) = %v, want [2 3]", ids)
	}
	// nil hi is unbounded.
	ids = nil
	if err := tab.IndexRange("by_grp", []spi.Value{spi.I64(40)}, nil, collect); err != nil {
		t.Fatalf("IndexRange: %v", err)
	}
	if fmt.Sprint(ids) != "[4 5]" {
		t.Fatalf("IndexRange[40,∞) = %v, want [4 5]", ids)
	}
}

// Every mutation must seed an absent chain with the key's prior committed
// value at CSN 0 — that is what lets a snapshot read a key some concurrent
// uncommitted step has since overwritten in the base table.
func testVersionSeed(t *testing.T, s spi.Store) {
	tab := mkTable(t, s)
	insert(t, tab, row(1, 10, "committed"))
	tab.ResetVersions() // declare the load quiescent

	if _, err := tab.Update(pk(1), row(1, 10, "dirty")); err != nil {
		t.Fatalf("Update: %v", err)
	}
	if n := tab.ChainLen(pk(1)); n != 1 {
		t.Fatalf("ChainLen after first mutation = %d, want 1 (the seed)", n)
	}
	// The as-of read must see the pre-image, not the dirty base row.
	got, err := tab.GetAsOf(pk(1), 5)
	if err != nil {
		t.Fatalf("GetAsOf: %v", err)
	}
	if !got.Equal(row(1, 10, "committed")) {
		t.Fatalf("GetAsOf during uncommitted overwrite = %v, want the pre-image", got)
	}
	// An insert seeds with a tombstone: the key did not exist before.
	insert(t, tab, row(2, 10, "new"))
	if _, err := tab.GetAsOf(pk(2), 5); !errors.Is(err, spi.ErrNotFound) {
		t.Fatalf("GetAsOf(uncommitted insert): err = %v, want ErrNotFound", err)
	}
	// A second mutation must not re-seed.
	if _, err := tab.Update(pk(1), row(1, 10, "dirty2")); err != nil {
		t.Fatalf("Update: %v", err)
	}
	if n := tab.ChainLen(pk(1)); n != 1 {
		t.Fatalf("ChainLen after second mutation = %d, want 1", n)
	}
}

func testVersionPublish(t *testing.T, s spi.Store) {
	tab := mkTable(t, s)
	insert(t, tab, row(1, 10, "v0"))
	tab.ResetVersions()

	prior := row(1, 10, "v0")
	if _, err := tab.Update(pk(1), row(1, 10, "v1")); err != nil {
		t.Fatalf("Update: %v", err)
	}
	tab.PublishVersion(pk(1), prior, row(1, 10, "v1"), 10)
	if _, err := tab.Update(pk(1), row(1, 10, "v2")); err != nil {
		t.Fatalf("Update: %v", err)
	}
	tab.PublishVersion(pk(1), prior, row(1, 10, "v2"), 20)

	for _, tc := range []struct {
		asOf spi.CSN
		want string
	}{{5, "v0"}, {10, "v1"}, {19, "v1"}, {20, "v2"}, {spi.MaxCSN, "v2"}} {
		got, err := tab.GetAsOf(pk(1), tc.asOf)
		if err != nil {
			t.Fatalf("GetAsOf(%d): %v", tc.asOf, err)
		}
		if got[2].Text() != tc.want {
			t.Fatalf("GetAsOf(%d) = %q, want %q", tc.asOf, got[2].Text(), tc.want)
		}
	}
	st := tab.VersionStats()
	if st.Chains != 1 || st.Versions != 3 {
		t.Fatalf("VersionStats = %+v, want 1 chain / 3 versions", st)
	}
	if n := tab.ChainLen(pk(1)); n != 3 {
		t.Fatalf("ChainLen = %d, want 3", n)
	}
}

func testVersionTombstone(t *testing.T, s spi.Store) {
	tab := mkTable(t, s)
	insert(t, tab, row(1, 10, "v0"))
	tab.ResetVersions()

	prior := row(1, 10, "v0")
	if _, err := tab.Delete(pk(1)); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	tab.PublishVersion(pk(1), prior, nil, 10) // committed delete: tombstone

	if got, err := tab.GetAsOf(pk(1), 5); err != nil || !got.Equal(prior) {
		t.Fatalf("GetAsOf(5) = %v, %v; want the pre-image", got, err)
	}
	if _, err := tab.GetAsOf(pk(1), 10); !errors.Is(err, spi.ErrNotFound) {
		t.Fatalf("GetAsOf(10) past the tombstone: err = %v, want ErrNotFound", err)
	}
}

func testScanAsOf(t *testing.T, s spi.Store) {
	tab := mkTable(t, s)
	insert(t, tab, row(1, 10, "a"), row(2, 10, "b"))
	tab.ResetVersions()

	// Key 3 inserted and published at CSN 10; key 2 deleted at CSN 10;
	// key 1 untouched (as-of reads fall back to the base row).
	insert(t, tab, row(3, 10, "c"))
	tab.PublishVersion(pk(3), nil, row(3, 10, "c"), 10)
	prior2 := row(2, 10, "b")
	if _, err := tab.Delete(pk(2)); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	tab.PublishVersion(pk(2), prior2, nil, 10)

	snapshot := func(asOf spi.CSN) map[int64]bool {
		got := map[int64]bool{}
		tab.ScanAsOf(asOf, func(_ spi.Key, r spi.Row) bool {
			got[r[0].Int64()] = true
			return true
		})
		return got
	}
	if got := snapshot(5); !got[1] || !got[2] || got[3] || len(got) != 2 {
		t.Fatalf("ScanAsOf(5) = %v, want {1,2}", got)
	}
	if got := snapshot(10); !got[1] || got[2] || !got[3] || len(got) != 2 {
		t.Fatalf("ScanAsOf(10) = %v, want {1,3}", got)
	}
}

func testIndexScanAsOf(t *testing.T, s spi.Store) {
	tab := mkTable(t, s)
	if err := tab.AddIndex(spi.IndexDef{Name: "by_grp", Columns: []string{"grp"}}); err != nil {
		t.Fatalf("AddIndex: %v", err)
	}
	insert(t, tab, row(1, 10, "old"))
	tab.ResetVersions()

	// Contents resolve as-of.
	prior := row(1, 10, "old")
	if _, err := tab.Update(pk(1), row(1, 10, "new")); err != nil {
		t.Fatalf("Update: %v", err)
	}
	tab.PublishVersion(pk(1), prior, row(1, 10, "new"), 10)
	// Membership is read-ASAP: a row inserted after asOf is walked, but its
	// chain proves it absent, so it must be skipped.
	insert(t, tab, row(2, 10, "later"))

	var names []string
	err := tab.IndexScanAsOf("by_grp", []spi.Value{spi.I64(10)}, 5, func(_ spi.Key, r spi.Row) bool {
		names = append(names, r[2].Text())
		return true
	})
	if err != nil {
		t.Fatalf("IndexScanAsOf: %v", err)
	}
	if fmt.Sprint(names) != "[old]" {
		t.Fatalf("IndexScanAsOf(asOf=5) = %v, want [old]", names)
	}
	if err := tab.IndexScanAsOf("nope", nil, 5, func(spi.Key, spi.Row) bool { return true }); err == nil {
		t.Fatal("IndexScanAsOf over a missing index succeeded")
	}
}

func testPruneVersions(t *testing.T, s spi.Store) {
	tab := mkTable(t, s)
	insert(t, tab, row(1, 10, "v0"))
	tab.ResetVersions()

	prior := row(1, 10, "v0")
	for i, name := range []string{"v1", "v2", "v3"} {
		if _, err := tab.Update(pk(1), row(1, 10, name)); err != nil {
			t.Fatalf("Update: %v", err)
		}
		tab.PublishVersion(pk(1), prior, row(1, 10, name), spi.CSN(10*(i+1)))
	}
	// Chain: seed@0, v1@10, v2@20, v3@30. Floor 20 keeps v2 (it serves the
	// oldest snapshot) and v3; seed and v1 are unreachable.
	pruned, dropped := tab.PruneVersions(20)
	if pruned != 2 || dropped != 0 {
		t.Fatalf("PruneVersions(20) = (%d, %d), want (2, 0)", pruned, dropped)
	}
	if got, err := tab.GetAsOf(pk(1), 20); err != nil || got[2].Text() != "v2" {
		t.Fatalf("GetAsOf(20) after prune = %v, %v; want v2", got, err)
	}
	// Floor past the head: the single survivor is value-identical to the
	// base row, so the chain may be dropped entirely...
	if _, dropped = tab.PruneVersions(40); dropped != 1 {
		t.Fatalf("PruneVersions(40) dropped = %d, want 1", dropped)
	}
	if n := tab.ChainLen(pk(1)); n != 0 {
		t.Fatalf("ChainLen after drop = %d, want 0", n)
	}
	// ...and the base-row fallback must now serve the value.
	if got, err := tab.GetAsOf(pk(1), 5); err != nil || got[2].Text() != "v3" {
		t.Fatalf("GetAsOf after drop = %v, %v; want the base row", got, err)
	}
	// The next mutation re-seeds.
	if _, err := tab.Update(pk(1), row(1, 10, "v4")); err != nil {
		t.Fatalf("Update: %v", err)
	}
	if n := tab.ChainLen(pk(1)); n != 1 {
		t.Fatalf("ChainLen after re-seed = %d, want 1", n)
	}
	// A chain whose survivor differs from the base row (an uncommitted
	// overwrite is in flight) must NOT be dropped.
	if _, dropped = tab.PruneVersions(40); dropped != 0 {
		t.Fatalf("PruneVersions dropped a chain shielding an uncommitted write")
	}
}

func testResetVersions(t *testing.T, s spi.Store) {
	tab := mkTable(t, s)
	insert(t, tab, row(1, 10, "v0"))
	if st := tab.VersionStats(); st.Chains != 1 {
		t.Fatalf("VersionStats before reset = %+v, want 1 chain (the insert seed)", st)
	}
	tab.ResetVersions()
	if st := tab.VersionStats(); st.Chains != 0 || st.Versions != 0 {
		t.Fatalf("VersionStats after reset = %+v, want empty", st)
	}
	if got, err := tab.GetAsOf(pk(1), 0); err != nil || !got.Equal(row(1, 10, "v0")) {
		t.Fatalf("GetAsOf after reset = %v, %v; want the base row", got, err)
	}
}
