package spi

import (
	"encoding/binary"
	"fmt"
	"math"
)

// MarshalRow appends a compact binary encoding of row to dst and returns the
// extended slice. The format is: uvarint column count, then per column a
// kind byte and a kind-specific payload (zigzag varint for ints, 8 raw bytes
// for floats, uvarint length + bytes for strings). Used by the WAL.
func MarshalRow(dst []byte, row Row) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(row)))
	for _, v := range row {
		dst = append(dst, byte(v.K))
		switch v.K {
		case KindInt:
			dst = binary.AppendVarint(dst, v.I)
		case KindFloat:
			var b [8]byte
			binary.LittleEndian.PutUint64(b[:], math.Float64bits(v.F))
			dst = append(dst, b[:]...)
		case KindString:
			dst = binary.AppendUvarint(dst, uint64(len(v.S)))
			dst = append(dst, v.S...)
		default:
			panic("spi: MarshalRow on zero Value")
		}
	}
	return dst
}

// UnmarshalRow decodes one row from b, returning the row and the number of
// bytes consumed.
func UnmarshalRow(b []byte) (Row, int, error) {
	n, sz := binary.Uvarint(b)
	// Each column costs at least one byte, so a count beyond the remaining
	// bytes is garbage; the bound also keeps the allocation below sane.
	if sz <= 0 || n > uint64(len(b)) {
		return nil, 0, fmt.Errorf("spi: bad row header")
	}
	off := sz
	row := make(Row, 0, n)
	for i := uint64(0); i < n; i++ {
		if off >= len(b) {
			return nil, 0, fmt.Errorf("spi: truncated row")
		}
		kind := Kind(b[off])
		off++
		switch kind {
		case KindInt:
			v, sz := binary.Varint(b[off:])
			if sz <= 0 {
				return nil, 0, fmt.Errorf("spi: bad int column")
			}
			off += sz
			row = append(row, I64(v))
		case KindFloat:
			if off+8 > len(b) {
				return nil, 0, fmt.Errorf("spi: truncated float column")
			}
			bits := binary.LittleEndian.Uint64(b[off : off+8])
			off += 8
			row = append(row, F64(math.Float64frombits(bits)))
		case KindString:
			l, sz := binary.Uvarint(b[off:])
			if sz <= 0 {
				return nil, 0, fmt.Errorf("spi: bad string length")
			}
			off += sz
			if off+int(l) > len(b) {
				return nil, 0, fmt.Errorf("spi: truncated string column")
			}
			row = append(row, Str(string(b[off:off+int(l)])))
			off += int(l)
		default:
			return nil, 0, fmt.Errorf("spi: bad column kind 0x%02x", byte(kind))
		}
	}
	return row, off, nil
}
