package spi

import (
	"errors"
	"math"
)

// Sentinel errors returned by table operations. Adapters must wrap these
// (errors.Is-compatible) so the scheduler's error taxonomy works unchanged.
var (
	// ErrNotFound reports a lookup for an absent primary key.
	ErrNotFound = errors.New("storage: row not found")
	// ErrDuplicate reports an insert whose primary key already exists.
	ErrDuplicate = errors.New("storage: duplicate primary key")
)

// CSN is a commit sequence number: the engine stamps one on every batch of
// row versions it publishes at an exposure point (end-of-step force, commit
// force, compensation-done force). CSNs are totally ordered and dense enough
// that "the database as of CSN c" is well defined: a reader holding c sees,
// for every key, the newest version stamped ≤ c.
//
// CSN 0 is reserved for pre-images: when a key is first mutated after load
// (or after its chain was garbage-collected), the mutation seeds the chain
// with the key's prior committed value at CSN 0, so the value predates — and
// is visible to — every possible snapshot.
type CSN uint64

// MaxCSN is the read-ASAP bound: a reader using it sees the newest published
// version of each key with no cross-key consistency claim.
const MaxCSN = CSN(math.MaxUint64)

// VersionStats summarizes a table's version-chain footprint.
type VersionStats struct {
	// Chains is the number of keys carrying a version chain.
	Chains int
	// Versions is the total number of chain entries across all keys.
	Versions int
}

// Table is one relation of a Store. The contract, which spitest exercises:
//
//   - Operations are individually atomic (an internal latch per call);
//     logical isolation is layered above by the scheduler. Returned rows are
//     copies the caller owns.
//   - Insert rejects an existing primary key with ErrDuplicate; Get, Update
//     and Delete report an absent key with ErrNotFound (wrapped). Update
//     must reject a row whose primary key differs from pk. Update and
//     Delete return the previous image — the scheduler's undo logging and
//     version publication depend on exact pre-image capture.
//   - Apply installs a row image directly (WAL redo): nil deletes, non-nil
//     upserts, index entries need not pre-exist.
//   - Secondary indexes order entries by encoded secondary columns then
//     primary key (EncodeKey semantics); IndexScan visits equal-prefix rows
//     and IndexRange visits [lo, hi) with nil hi unbounded.
//   - Version-chain obligations: every mutation seeds an absent chain with
//     the key's prior committed value at CSN 0 before applying itself;
//     PublishVersion appends an image (nil = tombstone) under a
//     non-decreasing stamp, re-seeding via prior if GC dropped the chain;
//     GetAsOf/ScanAsOf resolve the newest version ≤ asOf, falling back to
//     the base row only for keys with no chain; IndexScanAsOf membership is
//     read-ASAP while contents are as-of; PruneVersions truncates chains to
//     the newest version ≤ floor and may drop a single-entry chain only
//     when it is value-identical to the base row; ResetVersions drops all
//     chains (valid only when all rows are committed and quiescent).
type Table interface {
	// Schema describes the relation; immutable.
	Schema() *Schema
	// Len returns the number of rows.
	Len() int
	// Get returns a copy of the row with the given primary key.
	Get(pk Key) (Row, error)
	// Exists reports whether a primary key is present.
	Exists(pk Key) bool
	// Insert adds a new row; the primary key must not exist.
	Insert(row Row) error
	// Update replaces the row stored under pk, returning the previous image.
	Update(pk Key, row Row) (Row, error)
	// Delete removes the row under pk, returning the removed image.
	Delete(pk Key) (Row, error)
	// Apply installs a row image directly (nil row deletes; used by redo).
	Apply(pk Key, row Row)
	// Scan visits every row (copy) in unspecified order; the visitor
	// returns false to stop.
	Scan(visit func(pk Key, row Row) bool)
	// AddIndex creates a secondary index and backfills it.
	AddIndex(def IndexDef) error
	// IndexScan visits rows whose indexed columns equal eq, in index order.
	IndexScan(indexName string, eq []Value, visit func(pk Key, row Row) bool) error
	// IndexRange visits rows whose index entries fall in [lo, hi); nil hi
	// is unbounded.
	IndexRange(indexName string, lo, hi []Value, visit func(pk Key, row Row) bool) error

	// GetAsOf returns pk's value as of asOf (see the interface comment).
	GetAsOf(pk Key, asOf CSN) (Row, error)
	// ScanAsOf visits every key that exists as of asOf with its as-of value.
	ScanAsOf(asOf CSN, visit func(pk Key, row Row) bool)
	// IndexScanAsOf is IndexScan with as-of contents (membership read-ASAP).
	IndexScanAsOf(indexName string, eq []Value, asOf CSN, visit func(pk Key, row Row) bool) error
	// PublishVersion appends a committed image to pk's chain under csn.
	PublishVersion(pk Key, prior, row Row, csn CSN)
	// PruneVersions garbage-collects chains against the snapshot floor,
	// returning versions pruned and chains dropped.
	PruneVersions(floor CSN) (pruned, dropped int)
	// ResetVersions drops every chain (engine attach / end of recovery).
	ResetVersions()
	// VersionStats reports the current version-chain footprint.
	VersionStats() VersionStats
	// ChainLen reports the number of versions chained under pk (tests).
	ChainLen(pk Key) int
}

// Store is a named collection of tables — the row-store half of the SPI.
// Implementations must be safe for concurrent use.
type Store interface {
	// Create adds a table for schema; the name must be new.
	Create(schema *Schema) (Table, error)
	// Table returns the named table, or nil (an untyped nil interface, not
	// a typed-nil pointer) when absent.
	Table(name string) Table
	// Names returns the table names in unspecified order.
	Names() []string
}

// Capabilities declares which optional engine features a Store supports, so
// the engine can warn on (rather than silently ignore) configuration that a
// backend cannot honour.
type Capabilities struct {
	// Versions reports that the store implements the version-chain methods
	// with real multi-version semantics, enabling the lock-free read tiers
	// and the GC reaper.
	Versions bool
}

// CapabilityReporter is optionally implemented by a Store to declare its
// Capabilities; StoreCapabilities assumes full support otherwise.
type CapabilityReporter interface {
	Capabilities() Capabilities
}

// StoreCapabilities reports s's declared capabilities, defaulting to full
// support for stores that do not implement CapabilityReporter.
func StoreCapabilities(s Store) Capabilities {
	if cr, ok := s.(CapabilityReporter); ok {
		return cr.Capabilities()
	}
	return Capabilities{Versions: true}
}
