package spi

import (
	"fmt"
	"strings"
)

// Column describes one attribute of a relation.
type Column struct {
	Name string
	Kind Kind
}

// Schema describes a relation: its name, columns, and which column indexes
// form the primary key. Schemas are immutable after construction.
type Schema struct {
	Name    string
	Columns []Column
	// PK holds the ordinal positions of the primary-key columns, in key order.
	PK []int

	byName map[string]int
}

// NewSchema builds a schema, validating that primary-key columns exist and
// column names are unique.
func NewSchema(name string, cols []Column, pkCols ...string) (*Schema, error) {
	if name == "" {
		return nil, fmt.Errorf("spi: schema needs a name")
	}
	if len(pkCols) == 0 {
		return nil, fmt.Errorf("spi: schema %s needs a primary key", name)
	}
	s := &Schema{Name: name, Columns: cols, byName: make(map[string]int, len(cols))}
	for i, c := range cols {
		if c.Name == "" || c.Kind == 0 {
			return nil, fmt.Errorf("spi: schema %s: column %d incomplete", name, i)
		}
		if _, dup := s.byName[c.Name]; dup {
			return nil, fmt.Errorf("spi: schema %s: duplicate column %q", name, c.Name)
		}
		s.byName[c.Name] = i
	}
	for _, pk := range pkCols {
		i, ok := s.byName[pk]
		if !ok {
			return nil, fmt.Errorf("spi: schema %s: pk column %q not found", name, pk)
		}
		s.PK = append(s.PK, i)
	}
	return s, nil
}

// MustSchema is NewSchema that panics on error; intended for statically
// known schemas (TPC-C, examples) where a bad schema is a programming bug.
func MustSchema(name string, cols []Column, pkCols ...string) *Schema {
	s, err := NewSchema(name, cols, pkCols...)
	if err != nil {
		panic(err)
	}
	return s
}

// Col returns the ordinal of a named column, or -1 if absent.
func (s *Schema) Col(name string) int {
	if i, ok := s.byName[name]; ok {
		return i
	}
	return -1
}

// MustCol is Col but panics on a missing column; use for static column names.
func (s *Schema) MustCol(name string) int {
	i := s.Col(name)
	if i < 0 {
		panic(fmt.Sprintf("spi: schema %s has no column %q", s.Name, name))
	}
	return i
}

// PKOf extracts the primary-key values from a row in key order.
func (s *Schema) PKOf(row Row) []Value {
	out := make([]Value, len(s.PK))
	for i, c := range s.PK {
		out[i] = row[c]
	}
	return out
}

// KeyOf computes the encoded primary key of a row. It encodes the key
// columns in place rather than through PKOf, so the per-write hot path
// (every Insert/Update/Delete keys the row) costs one allocation.
func (s *Schema) KeyOf(row Row) Key {
	var b strings.Builder
	n := 0
	for _, c := range s.PK {
		n += KeyLen(row[c])
	}
	b.Grow(n)
	for _, c := range s.PK {
		AppendKeyVal(&b, row[c])
	}
	return Key(b.String())
}

// CheckRow verifies that a row matches the schema's arity and column kinds.
func (s *Schema) CheckRow(row Row) error {
	if len(row) != len(s.Columns) {
		return fmt.Errorf("spi: %s: row has %d values, want %d", s.Name, len(row), len(s.Columns))
	}
	for i, v := range row {
		if v.K != s.Columns[i].Kind {
			return fmt.Errorf("spi: %s.%s: value kind %s, want %s",
				s.Name, s.Columns[i].Name, v.K, s.Columns[i].Kind)
		}
	}
	return nil
}

// Row is a tuple: one Value per schema column, in schema order.
type Row []Value

// Clone returns a deep-enough copy (Values are immutable, so a shallow copy
// of the slice suffices).
func (r Row) Clone() Row {
	if r == nil {
		return nil
	}
	out := make(Row, len(r))
	copy(out, r)
	return out
}

// Equal reports whether two rows are value-wise identical.
func (r Row) Equal(o Row) bool {
	if len(r) != len(o) {
		return false
	}
	for i := range r {
		if !r[i].Equal(o[i]) {
			return false
		}
	}
	return true
}

// IndexDef names a secondary index and the columns it covers, in order.
// Index entries are the encoded secondary columns followed by the primary
// key, so range scans see rows in (secondary, pk) order.
type IndexDef struct {
	Name    string
	Columns []string
}
