package spi

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"accdb/internal/trace"
)

// TxnID identifies a transaction instance.
type TxnID uint64

// Level distinguishes the three granules of the lock hierarchy.
type Level uint8

const (
	// LevelTable locks a whole relation.
	LevelTable Level = iota + 1
	// LevelPartition locks a declared key-range of a relation (the stand-in
	// for Ingres page locks); inserts and deletes lock the partition
	// exclusively, scans lock it shared, which also closes the phantom
	// window for set-valued assertions.
	LevelPartition
	// LevelRow locks a single tuple by primary key.
	LevelRow
)

// String names the level.
func (l Level) String() string {
	switch l {
	case LevelTable:
		return "table"
	case LevelPartition:
		return "partition"
	case LevelRow:
		return "row"
	default:
		return fmt.Sprintf("Level(%d)", uint8(l))
	}
}

// Item names a lockable database item.
type Item struct {
	Table string
	Level Level
	Key   Key // empty at table level; partition key or row PK below
}

// TableItem names the table-level item of a relation.
func TableItem(table string) Item { return Item{Table: table, Level: LevelTable} }

// PartitionItem names a partition granule of a relation.
func PartitionItem(table string, key Key) Item {
	return Item{Table: table, Level: LevelPartition, Key: key}
}

// RowItem names a row granule of a relation.
func RowItem(table string, pk Key) Item {
	return Item{Table: table, Level: LevelRow, Key: pk}
}

// String renders the item for diagnostics.
func (it Item) String() string {
	if it.Level == LevelTable {
		return it.Table
	}
	return fmt.Sprintf("%s[%s/%x]", it.Table, it.Level, string(it.Key))
}

// Mode is a conventional lock mode.
type Mode uint8

const (
	// ModeIS is intention-shared.
	ModeIS Mode = iota + 1
	// ModeIX is intention-exclusive.
	ModeIX
	// ModeS is shared.
	ModeS
	// ModeSIX is shared with intention-exclusive.
	ModeSIX
	// ModeX is exclusive.
	ModeX
	// ModeA is an assertional lock; requests carry the assertion ID.
	ModeA
)

// String names the mode.
func (m Mode) String() string {
	switch m {
	case ModeIS:
		return "IS"
	case ModeIX:
		return "IX"
	case ModeS:
		return "S"
	case ModeSIX:
		return "SIX"
	case ModeX:
		return "X"
	case ModeA:
		return "A"
	default:
		return fmt.Sprintf("Mode(%d)", uint8(m))
	}
}

// Oracle answers the design-time interference questions; in production it is
// *interference.Tables, but tests may stub it.
type Oracle interface {
	Interferes(step StepTypeID, a AssertionID) bool
	PrefixInterferes(txn TxnTypeID, completed int, a AssertionID) bool
	MayInterleave(step StepTypeID, holder TxnTypeID, completed int) bool
}

// Txn is the lock service's view of a transaction instance. The engine
// creates one per transaction and advances CompletedSteps at each step
// boundary; exposure conflicts consult the live value so that the
// interleaving specification is breakpoint-accurate.
type Txn struct {
	ID   TxnID
	Type TxnTypeID

	// Span, when non-nil, is the transaction's latency-anatomy span: the
	// lock service charges blocked time to the per-mode lock-wait stages and
	// records each wait in the span's event history. Only the transaction's
	// own goroutine reads the field, so it needs no synchronization.
	Span *trace.Span

	// ShardMask is scratch space reserved for the lock service: a bitmask of
	// lock-table shards on which this transaction holds (or has held)
	// entries, so release passes visit only those shards. The engine never
	// reads or writes it; an implementation without internal sharding may
	// ignore it.
	ShardMask atomic.Uint64

	completed atomic.Int32
}

// NewTxn constructs the lock-side descriptor of a transaction.
func NewTxn(id TxnID, typ TxnTypeID) *Txn {
	return &Txn{ID: id, Type: typ}
}

// CompletedSteps returns the number of forward steps the transaction has
// finished.
func (t *Txn) CompletedSteps() int { return int(t.completed.Load()) }

// AdvanceStep records the completion of one forward step.
func (t *Txn) AdvanceStep() { t.completed.Add(1) }

// SetCompletedSteps overrides the step counter (used by recovery).
func (t *Txn) SetCompletedSteps(n int) { t.completed.Store(int32(n)) }

// LockRequest describes one lock acquisition.
type LockRequest struct {
	// Mode is the requested mode; ModeA requests also set Assertion.
	Mode Mode
	// Step is the requesting step's type, used for interference lookups.
	// Undecomposed transactions use LegacyStep.
	Step StepTypeID
	// Assertion is the assertion being locked when Mode == ModeA.
	Assertion AssertionID
	// Compensating marks requests issued by a compensating step; such a
	// request is never chosen as a deadlock victim.
	Compensating bool
}

// Errors returned by LockService.AcquireCtx.
var (
	// ErrDeadlock reports that the request completed a waits-for cycle and
	// was chosen as the victim. The caller aborts and retries the step.
	ErrDeadlock = errors.New("lock: deadlock victim")
	// ErrAborted reports that the waiting request was aborted from outside —
	// either by LockService.CancelWait or because a compensating step needed
	// the cycle broken.
	ErrAborted = errors.New("lock: wait aborted")
	// ErrTimeout reports that the configured wait budget elapsed.
	ErrTimeout = errors.New("lock: wait timed out")
)

// LockStats aggregates lock-service counters.
type LockStats struct {
	Acquisitions   uint64
	Waits          uint64
	WaitNanos      uint64
	Deadlocks      uint64
	VictimsForComp uint64 // forward steps aborted to let a compensation proceed
}

// ClassStats aggregates wait behaviour for one (table, level, mode) class;
// the benchmarks use it to attribute contention to specific hot spots.
type ClassStats struct {
	Waits     uint64
	WaitNanos uint64
}

// LockService is the scheduler's contract with a lock manager: the
// conventional multi-granularity modes plus the paper's three flavours —
// assertional locks (§3.2, requested as ModeA), exposure marks (§3.3,
// AttachExposure) and compensation reservations (§3.4, AttachReservation).
//
// Obligations on an implementation:
//
//   - AcquireCtx blocks until grant, deadlock victimhood (ErrDeadlock),
//     external cancellation (ErrAborted), wait-budget expiry (ErrTimeout) or
//     ctx done (ctx.Err()); re-requests by a holder are reentrant, and a
//     stronger re-request converts the held mode (conversions may not wait
//     behind plain requests on the same item — queue-jumping avoids the
//     classic convoy). Requests with Compensating set must never be chosen
//     as deadlock victims; the cycle is broken by aborting a forward waiter.
//   - Attach* are idempotent per (txn, item); entries carry the holder's
//     CompletedSteps at attach time so ReleaseStepAbort can drop exactly the
//     aborted step's marks.
//   - ReleaseConventional drops conventional grants only (step end);
//     assertional, exposure and reservation entries persist to commit and
//     fall with ReleaseAll. ReleaseAssertion drops one assertion's A-locks.
//   - The waits-for membership of a blocked request must be visible to
//     CancelWait, and Snapshot must render grants, queues and waits-for
//     edges as deadlock detection would see them.
type LockService interface {
	// SetWaitTimeout bounds each blocking AcquireCtx; zero waits forever.
	SetWaitTimeout(d time.Duration)
	// SetTracer attaches the structured event bus; nil disables tracing.
	// Call before the service handles requests.
	SetTracer(t *trace.Tracer)

	// AcquireCtx obtains the requested lock on item for txn (see the
	// interface comment for the blocking and conversion contract).
	AcquireCtx(ctx context.Context, txn *Txn, item Item, req LockRequest) error
	// AttachExposure marks item as exposed by txn: another transaction's
	// conventional access now requires interleaving permission at txn's
	// current breakpoint.
	AttachExposure(txn *Txn, item Item)
	// AttachReservation records that a compensating step of type cs may
	// later modify item; assertional locks that cs would interfere with are
	// refused on it. A NoStep cs is a no-op.
	AttachReservation(txn *Txn, item Item, cs StepTypeID)

	// ReleaseConventional releases txn's conventional locks (step end).
	ReleaseConventional(txn *Txn)
	// ReleaseStepAbort releases txn's conventional locks plus exposure and
	// reservation marks attached during the aborted step.
	ReleaseStepAbort(txn *Txn)
	// ReleaseAssertion drops txn's assertional locks for one assertion type.
	ReleaseAssertion(txn *Txn, a AssertionID)
	// ReleaseAll releases everything txn holds (commit or compensation end).
	ReleaseAll(txn *Txn)
	// CancelWait aborts txn's blocked request, if any, making it return
	// ErrAborted.
	CancelWait(txn TxnID)

	// HeldItems returns the items on which txn currently holds any entry.
	HeldItems(txn TxnID) []Item
	// HoldsConventional reports whether txn holds a conventional lock of at
	// least mode want on item.
	HoldsConventional(txn TxnID, item Item, want Mode) bool
	// Stats returns the aggregated counters.
	Stats() LockStats
	// ByClass returns per-(table, level, mode) wait tallies.
	ByClass() map[string]ClassStats
	// Snapshot dumps the lock table's current structure for introspection.
	Snapshot() *TableSnapshot
}
