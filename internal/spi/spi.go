// Package spi defines the service-provider interface between the assertional
// concurrency control scheduler (package core) and its backends: the row
// store that holds tuples and version chains, and the lock service that
// grants the conventional and A/D/C lock flavours of the paper. The
// scheduler depends only on this package; internal/storage (the B+-tree
// heap) and internal/lock (the sharded lock manager) are the default
// adapters, and internal/memstore is a deliberately simple second backend
// proving the seam carries no hidden dependencies.
//
// The package also owns the pure data model both sides speak — Value, Row,
// Key, Schema, CSN — and a backend registry through which composition roots
// select an implementation without the scheduler importing one. Importing
// accdb/internal/backends (blank) registers the in-tree defaults.
//
// The contract an adapter must honour is specified method-by-method on the
// Store, Table and LockService interfaces and is executable: the
// conformance suite in spi/spitest runs the full contract — CRUD,
// pre-images, scans, version-chain exposure semantics, GC re-seed —
// against any Store. DESIGN.md §15 is the prose companion.
package spi

import (
	"fmt"
	"os"
	"sort"
	"sync"
)

// EnvBackend is the environment variable consulted by DefaultBackend; it
// lets CI run the whole engine test matrix against an alternate store
// without code changes.
const EnvBackend = "ACCDB_BACKEND"

// DefaultBackendName is the backend DefaultBackend falls back to when
// EnvBackend is unset: the B+-tree heap of internal/storage.
const DefaultBackendName = "btree"

var (
	regMu    sync.RWMutex
	backends = map[string]func() Store{}
	lockSvc  func(Oracle) LockService
)

// Register installs a named Store factory. Backends call it from init();
// registering a duplicate name panics, as that is always a wiring bug.
func Register(name string, open func() Store) {
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := backends[name]; dup {
		panic(fmt.Sprintf("spi: backend %q registered twice", name))
	}
	backends[name] = open
}

// OpenStore instantiates the named backend, or errors with the registered
// alternatives (an empty list means the caller forgot the blank import of
// accdb/internal/backends).
func OpenStore(name string) (Store, error) {
	regMu.RLock()
	open := backends[name]
	regMu.RUnlock()
	if open == nil {
		return nil, fmt.Errorf("spi: no backend %q registered (have %v; blank-import accdb/internal/backends for the defaults)",
			name, Backends())
	}
	return open(), nil
}

// Backends lists the registered backend names, sorted.
func Backends() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	names := make([]string, 0, len(backends))
	for n := range backends {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// DefaultBackend returns the backend name selected by the EnvBackend
// environment variable, or DefaultBackendName when unset.
func DefaultBackend() string {
	if name := os.Getenv(EnvBackend); name != "" {
		return name
	}
	return DefaultBackendName
}

// RegisterLockService installs the lock-service factory. The in-tree
// sharded lock manager registers itself from init(); registering twice
// panics.
func RegisterLockService(open func(Oracle) LockService) {
	regMu.Lock()
	defer regMu.Unlock()
	if lockSvc != nil {
		panic("spi: lock service registered twice")
	}
	lockSvc = open
}

// NewLockService instantiates the registered lock service over the given
// interference oracle. It panics when none is registered — the engine
// cannot run lockless, so this is a wiring bug, fixed by blank-importing
// accdb/internal/backends.
func NewLockService(o Oracle) LockService {
	regMu.RLock()
	open := lockSvc
	regMu.RUnlock()
	if open == nil {
		panic("spi: no lock service registered (blank-import accdb/internal/backends)")
	}
	return open(o)
}
