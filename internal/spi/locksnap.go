package spi

import (
	"fmt"
	"strings"
)

// Lock-table introspection data model. A LockService.Snapshot returns a
// structural dump: every held entry — conventional modes and the paper's
// A/D/C kinds — every wait queue, and the waits-for edges as deadlock
// detection would see them. The dump is advisory: an implementation may
// observe its internal partitions at slightly different instants, the same
// consistency deadlock detection itself settles for.

// TableSnapshot is a point-in-time structural dump of the lock table.
type TableSnapshot struct {
	// Shards lists only shards with at least one populated item; a
	// non-sharded implementation reports a single shard 0.
	Shards []ShardSnapshot
	// Edges is the waits-for graph: Edges[i].From waits for Edges[i].To.
	Edges []WaitEdge
}

// ShardSnapshot dumps one lock-table partition.
type ShardSnapshot struct {
	Index int
	Items []ItemSnapshot
}

// ItemSnapshot dumps one item's grant list and wait queue.
type ItemSnapshot struct {
	Item   Item
	Grants []GrantSnapshot
	Queue  []WaitSnapshot
}

// GrantSnapshot describes one held entry. Kind is "lock" for conventional
// entries, or the paper's tags: "A" (assertional), "D" (exposure mark),
// "C" (compensation reservation). Mode carries the conventional mode for
// "lock" entries and repeats the tag otherwise.
type GrantSnapshot struct {
	Txn       TxnID
	Kind      string
	Mode      string
	Assertion int // assertion ID for "A" entries, else -1
}

// WaitSnapshot describes one queued (still blocked) request.
type WaitSnapshot struct {
	Txn          TxnID
	Mode         string
	Compensating bool
	Conversion   bool
}

// WaitEdge is one waits-for edge, annotated with the contested item.
type WaitEdge struct {
	From TxnID
	To   TxnID
	Item Item
}

// GrantCount totals held entries across the dump.
func (s *TableSnapshot) GrantCount() int {
	n := 0
	for _, sh := range s.Shards {
		for _, it := range sh.Items {
			n += len(it.Grants)
		}
	}
	return n
}

// WaiterCount totals blocked requests across the dump.
func (s *TableSnapshot) WaiterCount() int {
	n := 0
	for _, sh := range s.Shards {
		for _, it := range sh.Items {
			n += len(it.Queue)
		}
	}
	return n
}

// DOT renders the waits-for graph in Graphviz DOT form. Blocked transactions
// and their blockers appear as nodes; each edge is labelled with the
// contested item. An empty graph still renders a valid digraph.
func (s *TableSnapshot) DOT() string {
	var b strings.Builder
	b.WriteString("digraph waitsfor {\n")
	b.WriteString("  rankdir=LR;\n")
	b.WriteString("  node [shape=circle];\n")
	seen := make(map[TxnID]bool)
	node := func(t TxnID) {
		if !seen[t] {
			seen[t] = true
			fmt.Fprintf(&b, "  t%d [label=\"T%d\"];\n", t, t)
		}
	}
	for _, e := range s.Edges {
		node(e.From)
		node(e.To)
	}
	for _, e := range s.Edges {
		fmt.Fprintf(&b, "  t%d -> t%d [label=%q];\n", e.From, e.To, e.Item.String())
	}
	b.WriteString("}\n")
	return b.String()
}

// String renders the dump as indented text for debug endpoints and logs.
func (s *TableSnapshot) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "lock table: %d grants, %d waiters, %d waits-for edges\n",
		s.GrantCount(), s.WaiterCount(), len(s.Edges))
	for _, sh := range s.Shards {
		fmt.Fprintf(&b, "shard %d:\n", sh.Index)
		for _, it := range sh.Items {
			fmt.Fprintf(&b, "  %s:\n", it.Item)
			for _, g := range it.Grants {
				if g.Kind == "A" {
					fmt.Fprintf(&b, "    held T%d A(assertion=%d)\n", g.Txn, g.Assertion)
				} else if g.Kind == "lock" {
					fmt.Fprintf(&b, "    held T%d %s\n", g.Txn, g.Mode)
				} else {
					fmt.Fprintf(&b, "    held T%d %s\n", g.Txn, g.Kind)
				}
			}
			for _, w := range it.Queue {
				flags := ""
				if w.Conversion {
					flags += " conversion"
				}
				if w.Compensating {
					flags += " compensating"
				}
				fmt.Fprintf(&b, "    wait T%d %s%s\n", w.Txn, w.Mode, flags)
			}
		}
	}
	for _, e := range s.Edges {
		fmt.Fprintf(&b, "T%d waits-for T%d on %s\n", e.From, e.To, e.Item)
	}
	return b.String()
}
