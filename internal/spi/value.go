package spi

import (
	"encoding/binary"
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Kind enumerates the column types supported by the engine.
type Kind uint8

const (
	// KindInt is a 64-bit signed integer column.
	KindInt Kind = iota + 1
	// KindFloat is a 64-bit IEEE-754 column.
	KindFloat
	// KindString is a variable-length string column.
	KindString
)

// String returns the SQL-ish name of the kind.
func (k Kind) String() string {
	switch k {
	case KindInt:
		return "INT"
	case KindFloat:
		return "FLOAT"
	case KindString:
		return "VARCHAR"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Value is a single column value. It is a tagged union rather than an
// interface so that rows are contiguous and cheap to copy; a Value is
// immutable by convention.
type Value struct {
	K Kind
	I int64
	F float64
	S string
}

// I64 constructs an integer value.
func I64(v int64) Value { return Value{K: KindInt, I: v} }

// Int constructs an integer value from an int.
func Int(v int) Value { return Value{K: KindInt, I: int64(v)} }

// F64 constructs a float value.
func F64(v float64) Value { return Value{K: KindFloat, F: v} }

// Str constructs a string value.
func Str(v string) Value { return Value{K: KindString, S: v} }

// Int64 returns the integer payload; it panics if the value is not an int.
func (v Value) Int64() int64 {
	if v.K != KindInt {
		panic("spi: Int64 on " + v.K.String())
	}
	return v.I
}

// Float64 returns the float payload; it panics if the value is not a float.
func (v Value) Float64() float64 {
	if v.K != KindFloat {
		panic("spi: Float64 on " + v.K.String())
	}
	return v.F
}

// Text returns the string payload; it panics if the value is not a string.
func (v Value) Text() string {
	if v.K != KindString {
		panic("spi: Text on " + v.K.String())
	}
	return v.S
}

// Equal reports whether two values have the same kind and payload.
func (v Value) Equal(o Value) bool {
	if v.K != o.K {
		return false
	}
	switch v.K {
	case KindInt:
		return v.I == o.I
	case KindFloat:
		return v.F == o.F
	case KindString:
		return v.S == o.S
	}
	return false
}

// Compare orders two values of the same kind: -1, 0, or +1. Comparing
// values of different kinds panics; schemas make that a design-time error.
func (v Value) Compare(o Value) int {
	if v.K != o.K {
		panic(fmt.Sprintf("spi: comparing %s with %s", v.K, o.K))
	}
	switch v.K {
	case KindInt:
		switch {
		case v.I < o.I:
			return -1
		case v.I > o.I:
			return 1
		}
		return 0
	case KindFloat:
		switch {
		case v.F < o.F:
			return -1
		case v.F > o.F:
			return 1
		}
		return 0
	case KindString:
		switch {
		case v.S < o.S:
			return -1
		case v.S > o.S:
			return 1
		}
		return 0
	}
	return 0
}

// String renders the value for diagnostics.
func (v Value) String() string {
	switch v.K {
	case KindInt:
		return strconv.FormatInt(v.I, 10)
	case KindFloat:
		return strconv.FormatFloat(v.F, 'g', -1, 64)
	case KindString:
		return strconv.Quote(v.S)
	default:
		return "<nil>"
	}
}

// Key is an order-preserving binary encoding of a composite key. Two keys
// compare bytewise in the same order as the value tuples they encode, which
// lets ordered indexes and the lock table use plain byte comparison.
type Key string

// EncodeKey builds an order-preserving key from the given values.
//
// Integers are encoded big-endian with the sign bit flipped so unsigned
// byte order matches signed integer order. Floats use the standard
// monotone IEEE-754 transform. Strings are escaped (0x00 -> 0x00 0xFF) and
// terminated with 0x00 0x00 so that prefixes order correctly. Each value is
// preceded by a one-byte kind tag so malformed mixes fail loudly on decode.
func EncodeKey(vals ...Value) Key {
	var b strings.Builder
	n := 0
	for _, v := range vals {
		n += KeyLen(v)
	}
	b.Grow(n)
	for _, v := range vals {
		AppendKeyVal(&b, v)
	}
	return Key(b.String())
}

// KeyLen returns the exact encoded size of one value inside a key, so key
// builders (KeyOf, backends building composite index entries) can Grow once
// and encode with no further allocation.
func KeyLen(v Value) int {
	switch v.K {
	case KindInt, KindFloat:
		return 9
	case KindString:
		n := 3 + len(v.S) // kind tag + payload + 0x00 0x00 terminator
		for i := 0; i < len(v.S); i++ {
			if v.S[i] == 0x00 {
				n++ // escaped to 0x00 0xFF
			}
		}
		return n
	default:
		panic("spi: EncodeKey on zero Value")
	}
}

// AppendKeyVal encodes one value onto a pre-grown builder; the format is
// documented on EncodeKey. Paired with KeyLen it is the single-allocation
// building block for composite keys.
func AppendKeyVal(b *strings.Builder, v Value) {
	b.WriteByte(byte(v.K))
	switch v.K {
	case KindInt:
		var buf [8]byte
		binary.BigEndian.PutUint64(buf[:], uint64(v.I)^(1<<63))
		b.Write(buf[:])
	case KindFloat:
		bits := math.Float64bits(v.F)
		if bits&(1<<63) != 0 {
			bits = ^bits
		} else {
			bits |= 1 << 63
		}
		var buf [8]byte
		binary.BigEndian.PutUint64(buf[:], bits)
		b.Write(buf[:])
	case KindString:
		for i := 0; i < len(v.S); i++ {
			c := v.S[i]
			b.WriteByte(c)
			if c == 0x00 {
				b.WriteByte(0xFF)
			}
		}
		b.WriteByte(0x00)
		b.WriteByte(0x00)
	default:
		panic("spi: EncodeKey on zero Value")
	}
}

// DecodeKey reverses EncodeKey. It returns an error on malformed input so
// that log-recovery paths can surface corruption instead of panicking.
func DecodeKey(k Key) ([]Value, error) {
	var out []Value
	b := []byte(k)
	for len(b) > 0 {
		kind := Kind(b[0])
		b = b[1:]
		switch kind {
		case KindInt:
			if len(b) < 8 {
				return nil, fmt.Errorf("spi: truncated int key")
			}
			u := binary.BigEndian.Uint64(b[:8]) ^ (1 << 63)
			out = append(out, I64(int64(u)))
			b = b[8:]
		case KindFloat:
			if len(b) < 8 {
				return nil, fmt.Errorf("spi: truncated float key")
			}
			bits := binary.BigEndian.Uint64(b[:8])
			if bits&(1<<63) != 0 {
				bits &^= 1 << 63
			} else {
				bits = ^bits
			}
			out = append(out, F64(math.Float64frombits(bits)))
			b = b[8:]
		case KindString:
			var s []byte
			i := 0
			for {
				if i >= len(b) {
					return nil, fmt.Errorf("spi: unterminated string key")
				}
				c := b[i]
				if c == 0x00 {
					if i+1 >= len(b) {
						return nil, fmt.Errorf("spi: truncated string escape")
					}
					if b[i+1] == 0x00 { // terminator
						i += 2
						break
					}
					if b[i+1] == 0xFF { // escaped NUL
						s = append(s, 0x00)
						i += 2
						continue
					}
					return nil, fmt.Errorf("spi: bad string escape 0x%02x", b[i+1])
				}
				s = append(s, c)
				i++
			}
			out = append(out, Str(string(s)))
			b = b[i:]
		default:
			return nil, fmt.Errorf("spi: bad kind tag 0x%02x in key", byte(kind))
		}
	}
	return out, nil
}
