// Command accd serves an ACC engine's registered transaction types over TCP.
// It loads a deterministic TPC-C database at startup, listens on -addr with
// the length-prefixed wire protocol (internal/server/wire), and admits at
// most -max-inflight concurrent requests — beyond that clients get a fast
// queue-full refusal instead of unbounded queueing.
//
// SIGTERM or SIGINT starts a graceful drain: the listener closes, new
// requests are refused with a draining status, in-flight transactions run to
// completion (commit or §3.4 compensation), the write-ahead log is forced,
// and — unless -check=false — the twelve-component TPC-C consistency
// constraint is verified over the final database, with compensated
// new-order holes observed server-side. Violations exit non-zero, so a CI
// smoke run asserts end-to-end integrity just by checking the exit code.
//
// With -metrics-addr set, /metrics serves the engine, admission, and per-RPC
// latency counters in Prometheus text format.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"accdb/internal/core"
	"accdb/internal/server"
	"accdb/internal/tpcc"
	"accdb/internal/trace"
	"accdb/internal/wal"
)

func main() {
	var (
		addr         = flag.String("addr", "127.0.0.1:7654", "listen address for the wire protocol")
		mode         = flag.String("mode", "acc", "scheduler: acc | baseline | two-level")
		maxInFlight  = flag.Int("max-inflight", server.DefaultMaxInFlight, "admission bound on concurrently executing requests")
		waitTimeout  = flag.Duration("wait-timeout", 10*time.Second, "lock-wait safety net")
		force        = flag.Duration("force", 0, "simulated log force latency (memory log)")
		walDir       = flag.String("wal-dir", "", "back the log with segment files in this directory")
		groupCommit  = flag.Duration("group-commit", 0, "cross-session group-commit window: a force leader waits this long so concurrent commits share one log sync (0 disables)")
		seed         = flag.Int64("seed", 1, "TPC-C load seed")
		metricsAddr  = flag.String("metrics-addr", "", "serve /metrics on this address (e.g. :6061)")
		traceOut     = flag.String("trace", "", "write structured events to this file (.json: Chrome trace_event; otherwise JSONL)")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "bound on the graceful drain; in-flight work past it is cancelled (and compensated)")
		check        = flag.Bool("check", true, "verify TPC-C consistency after the drain; violations exit non-zero")
		ready        = flag.String("ready-fd", "", "write one line with the bound address to this file once listening (harness handshake)")
	)
	flag.Parse()

	var m core.Mode
	switch *mode {
	case "acc":
		m = core.ModeACC
	case "baseline":
		m = core.ModeBaseline
	case "two-level":
		m = core.ModeTwoLevel
	default:
		fatal(fmt.Errorf("unknown -mode %q", *mode))
	}

	var tr *trace.Tracer
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fatal(err)
		}
		if strings.HasSuffix(*traceOut, ".json") {
			tr = trace.New(trace.NewChromeSink(f))
		} else {
			tr = trace.New(trace.NewJSONLSink(f))
		}
		defer func() {
			if err := tr.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "accd: closing trace:", err)
			}
		}()
	}

	scale := tpcc.DefaultScale()
	db := core.NewDB()
	if err := tpcc.CreateSchema(db); err != nil {
		fatal(err)
	}
	if err := tpcc.Load(db, scale, *seed); err != nil {
		fatal(err)
	}
	types := tpcc.BuildTypes()
	var dlog *wal.Log
	if *walDir != "" {
		var err error
		dlog, err = wal.Open(*walDir, wal.Options{ForceLatency: *force, GroupWindow: *groupCommit})
		if err != nil {
			fatal(err)
		}
		defer dlog.Close()
	}
	eng := core.New(db, types.Tables,
		core.WithMode(m),
		core.WithWaitTimeout(*waitTimeout),
		core.WithForceLatency(*force),
		core.WithTracer(tr),
		core.WithWAL(dlog),
	)
	if _, err := tpcc.Register(eng, types, scale); err != nil {
		fatal(err)
	}

	protos := tpcc.ArgsPrototypes()
	holes := tpcc.NewHoleTracker()
	srv := server.New(server.Config{
		Engine: eng,
		NewArgs: func(name string) any {
			if f, ok := protos[name]; ok {
				return f()
			}
			return nil
		},
		MaxInFlight: *maxInFlight,
		Tracer:      tr,
		OnOutcome:   holes.Observe,
	})

	if *metricsAddr != "" {
		if err := serveMetrics(*metricsAddr, eng, srv); err != nil {
			fatal(err)
		}
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "accd: serving %s TPC-C on %s (max in-flight %d)\n",
		m, ln.Addr(), *maxInFlight)
	if *ready != "" {
		if err := os.WriteFile(*ready, []byte(ln.Addr().String()+"\n"), 0o644); err != nil {
			fatal(err)
		}
	}

	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGTERM, syscall.SIGINT)
	select {
	case sig := <-sigs:
		fmt.Fprintf(os.Stderr, "accd: %v: draining (timeout %v)\n", sig, *drainTimeout)
	case err := <-serveErr:
		fatal(fmt.Errorf("accd: serve: %w", err))
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "accd: drain incomplete:", err)
	}
	st := srv.Stats()
	es := eng.Snapshot()
	fmt.Fprintf(os.Stderr,
		"accd: drained: admitted=%d rejected_full=%d rejected_draining=%d commits=%d compensations=%d\n",
		st.Admitted, st.RejectedFull, st.RejectedDraining, es.Commits, es.Compensations)

	if *check {
		if errs := tpcc.CheckConsistency(db, scale, holes.Holes()); len(errs) > 0 {
			for _, e := range errs {
				fmt.Fprintln(os.Stderr, "accd: consistency violation:", e)
			}
			os.Exit(1)
		}
		fmt.Fprintln(os.Stderr, "accd: consistency check passed")
	}
}

// serveMetrics mounts /metrics with the engine counters and the server's
// admission and latency series.
func serveMetrics(addr string, eng *core.Engine, srv *server.Server) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("metrics listener: %w", err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		es := eng.Snapshot()
		counter := func(name, help string, v uint64) {
			fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
		}
		counter("accdb_txn_commits_total", "Committed transactions.", es.Commits)
		counter("accdb_txn_user_aborts_total", "User-initiated aborts.", es.UserAborts)
		counter("accdb_txn_compensations_total", "Compensated rollbacks.", es.Compensations)
		counter("accdb_txn_comp_failures_total", "Failed compensations.", es.CompFailures)
		counter("accdb_txn_step_retries_total", "Forward-step retries.", es.StepRetries)
		counter("accdb_txn_retries_total", "Whole-transaction restarts.", es.TxnRetries)
		srv.WriteMetrics(w)
	})
	hs := &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	go hs.Serve(ln)
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "accd:", err)
	os.Exit(1)
}
