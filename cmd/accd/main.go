// Command accd serves an ACC engine's registered transaction types over TCP.
// It loads a deterministic TPC-C database at startup, listens on -addr with
// the length-prefixed wire protocol (internal/server/wire), and admits at
// most -max-inflight concurrent requests — beyond that clients get a fast
// queue-full refusal instead of unbounded queueing.
//
// SIGTERM or SIGINT starts a graceful drain: the listener closes, new
// requests are refused with a draining status, in-flight transactions run to
// completion (commit or §3.4 compensation), the write-ahead log is forced,
// and — unless -check=false — the twelve-component TPC-C consistency
// constraint is verified over the final database, with compensated
// new-order holes observed server-side. Violations exit non-zero, so a CI
// smoke run asserts end-to-end integrity just by checking the exit code.
//
// With -metrics-addr set, the shared debug endpoint (internal/debughttp)
// serves /metrics (engine, lock, WAL, latency-anatomy, admission and per-RPC
// series in Prometheus text format), /debug/locks, /debug/waitsfor,
// /debug/anatomy and /debug/pprof. With -slow-txn-threshold set, every
// transaction slower than the threshold is dumped to -slow-txn-log as one
// JSONL record carrying its full per-stage breakdown and event history.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	_ "accdb/internal/backends"
	"accdb/internal/core"
	"accdb/internal/debughttp"
	"accdb/internal/partition"
	"accdb/internal/server"
	"accdb/internal/tpcc"
	"accdb/internal/trace"
	"accdb/internal/wal"
)

// The partition set serves the same wire protocol as a single engine.
var _ server.Runner = (*partition.Set)(nil)

func main() {
	var (
		addr         = flag.String("addr", "127.0.0.1:7654", "listen address for the wire protocol")
		mode         = flag.String("mode", "acc", "scheduler: acc | baseline | two-level")
		maxInFlight  = flag.Int("max-inflight", server.DefaultMaxInFlight, "admission bound on concurrently executing requests")
		waitTimeout  = flag.Duration("wait-timeout", 10*time.Second, "lock-wait safety net")
		force        = flag.Duration("force", 0, "simulated log force latency (memory log)")
		walDir       = flag.String("wal-dir", "", "back the log with segment files in this directory")
		groupCommit  = flag.Duration("group-commit", 0, "cross-session group-commit window: a force leader waits this long so concurrent commits share one log sync (0 disables)")
		seed         = flag.Int64("seed", 1, "TPC-C load seed")
		metricsAddr  = flag.String("metrics-addr", "", "serve /metrics, /debug/locks, /debug/waitsfor, /debug/anatomy and /debug/pprof on this address (e.g. :6061)")
		slowThr      = flag.Duration("slow-txn-threshold", 0, "dump any transaction slower than this to -slow-txn-log as JSONL, with its full stage breakdown and event history (0 disables)")
		slowLog      = flag.String("slow-txn-log", "slow-txns.jsonl", "destination for -slow-txn-threshold dumps")
		traceOut     = flag.String("trace", "", "write structured events to this file (.json: Chrome trace_event; otherwise JSONL)")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "bound on the graceful drain; in-flight work past it is cancelled (and compensated)")
		check        = flag.Bool("check", true, "verify TPC-C consistency after the drain; violations exit non-zero")
		ready        = flag.String("ready-fd", "", "write one line with the bound address to this file once listening (harness handshake)")
		partitions   = flag.Int("partitions", partition.EnvPartitions(), "partition count: >1 shards warehouses across independent engines behind the multi-shot coordinator (default from ACCDB_PARTITIONS)")
	)
	flag.Parse()

	var m core.Mode
	switch *mode {
	case "acc":
		m = core.ModeACC
	case "baseline":
		m = core.ModeBaseline
	case "two-level":
		m = core.ModeTwoLevel
	default:
		fatal(fmt.Errorf("unknown -mode %q", *mode))
	}

	var tr *trace.Tracer
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fatal(err)
		}
		if strings.HasSuffix(*traceOut, ".json") {
			tr = trace.New(trace.NewChromeSink(f))
		} else {
			tr = trace.New(trace.NewJSONLSink(f))
		}
		defer func() {
			if err := tr.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "accd: closing trace:", err)
			}
		}()
	}

	scale := tpcc.DefaultScale()
	if scale.Warehouses < *partitions {
		// Every partition must own at least one warehouse for the
		// warehouse-modulo router to give each engine work.
		scale.Warehouses = *partitions
	}

	// buildEngine constructs one engine: partition p's shard of the database
	// (p is -1 for the single-engine deployment), its own log under a
	// per-partition subdirectory, its transaction types registered.
	var logs []*wal.Log
	buildEngine := func(p int) (*core.Engine, error) {
		db := core.NewDB()
		if err := tpcc.CreateSchema(db); err != nil {
			return nil, err
		}
		if err := tpcc.LoadPartition(db, scale, *seed, max(p, 0), *partitions); err != nil {
			return nil, err
		}
		types := tpcc.BuildTypes()
		var dlog *wal.Log
		if *walDir != "" {
			dir := *walDir
			if p >= 0 {
				dir = filepath.Join(dir, fmt.Sprintf("p%d", p))
			}
			var err error
			dlog, err = wal.Open(dir, wal.Options{ForceLatency: *force, GroupWindow: *groupCommit})
			if err != nil {
				return nil, err
			}
			logs = append(logs, dlog)
		}
		opts := []core.Option{
			core.WithMode(m),
			core.WithWaitTimeout(*waitTimeout),
			core.WithForceLatency(*force),
			core.WithTracer(tr),
			core.WithWAL(dlog),
		}
		if p >= 0 {
			opts = append(opts, core.WithEngineLabel(fmt.Sprintf("partition %d", p)))
		}
		eng := core.New(db, types.Tables, opts...)
		if _, err := tpcc.RegisterPartitioned(eng, types, scale, *partitions); err != nil {
			return nil, err
		}
		return eng, nil
	}

	var (
		eng *core.Engine   // partition 0's engine (debug endpoints, stats)
		set *partition.Set // non-nil only when -partitions > 1
	)
	if *partitions > 1 {
		var err error
		set, err = partition.New(*partitions, buildEngine, partition.WithTracer(tr))
		if err != nil {
			fatal(err)
		}
		tpcc.InstallRoutes(set)
		eng = set.Engine(0)
	} else {
		var err error
		eng, err = buildEngine(-1)
		if err != nil {
			fatal(err)
		}
	}
	defer func() {
		for _, l := range logs {
			l.Close()
		}
	}()

	// The latency-anatomy layer turns on with either consumer: the debug
	// endpoint's live histograms, or the slow-transaction flight recorder.
	// It attaches to the server (not the engine): the server starts each
	// request's span at frame read, so the engine must not start its own.
	var anatomy *trace.Anatomy
	if *metricsAddr != "" || *slowThr > 0 {
		acfg := trace.AnatomyConfig{SlowThreshold: *slowThr, Tracer: tr}
		if *slowThr > 0 {
			f, err := os.Create(*slowLog)
			if err != nil {
				fatal(err)
			}
			acfg.SlowWriter = f
		}
		anatomy = trace.NewAnatomy(acfg)
	}

	var runner server.Runner = eng
	if set != nil {
		runner = set
	}
	protos := tpcc.ArgsPrototypes()
	holes := tpcc.NewHoleTracker()
	srv := server.New(server.Config{
		Engine: runner,
		NewArgs: func(name string) any {
			if f, ok := protos[name]; ok {
				return f()
			}
			return nil
		},
		MaxInFlight: *maxInFlight,
		Tracer:      tr,
		Anatomy:     anatomy,
		OnOutcome:   holes.Observe,
	})

	if *metricsAddr != "" {
		dbg := debughttp.New(tr, anatomy)
		// Partitioned: the engine sections show partition 0 (every partition
		// is symmetric); the set's own routing/coordinator series ride along.
		dbg.SetEngine(eng)
		dbg.SetRPCMetrics(srv.WriteMetrics)
		if set != nil {
			dbg.SetExtraMetrics(set.WriteMetrics)
		}
		if err := dbg.Start(*metricsAddr); err != nil {
			fatal(err)
		}
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "accd: serving %s TPC-C on %s (max in-flight %d, partitions %d)\n",
		m, ln.Addr(), *maxInFlight, *partitions)
	if *ready != "" {
		if err := os.WriteFile(*ready, []byte(ln.Addr().String()+"\n"), 0o644); err != nil {
			fatal(err)
		}
	}

	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGTERM, syscall.SIGINT)
	select {
	case sig := <-sigs:
		fmt.Fprintf(os.Stderr, "accd: %v: draining (timeout %v)\n", sig, *drainTimeout)
	case err := <-serveErr:
		fatal(fmt.Errorf("accd: serve: %w", err))
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "accd: drain incomplete:", err)
	}
	st := srv.Stats()
	var es core.Stats
	if set != nil {
		for _, e := range set.Engines() {
			s := e.Snapshot()
			es.Commits += s.Commits
			es.Compensations += s.Compensations
		}
		ps := set.Snapshot()
		fmt.Fprintf(os.Stderr,
			"accd: partition routing: single=%d cross_started=%d cross_committed=%d cross_aborted=%d shots=%d undos=%d deadlocks=%d\n",
			ps.SingleRouted, ps.CrossStarted, ps.CrossCommitted, ps.CrossAborted,
			ps.ShotsRun, ps.ShotUndos, ps.CrossDeadlocks)
	} else {
		es = eng.Snapshot()
	}
	fmt.Fprintf(os.Stderr,
		"accd: drained: admitted=%d rejected_full=%d rejected_draining=%d commits=%d compensations=%d\n",
		st.Admitted, st.RejectedFull, st.RejectedDraining, es.Commits, es.Compensations)

	if *check {
		var errs []error
		if set != nil {
			dbs := make([]*core.DB, set.Partitions())
			for p := range dbs {
				dbs[p] = set.Engine(p).DB()
			}
			errs = tpcc.CheckConsistencyPartitioned(dbs, scale, holes.Holes())
		} else {
			errs = tpcc.CheckConsistency(eng.DB(), scale, holes.Holes())
		}
		if len(errs) > 0 {
			for _, e := range errs {
				fmt.Fprintln(os.Stderr, "accd: consistency violation:", e)
			}
			os.Exit(1)
		}
		fmt.Fprintln(os.Stderr, "accd: consistency check passed")
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "accd:", err)
	os.Exit(1)
}
