// Command accd serves an ACC engine's registered transaction types over TCP.
// It loads a deterministic TPC-C database at startup, listens on -addr with
// the length-prefixed wire protocol (internal/server/wire), and admits at
// most -max-inflight concurrent requests — beyond that clients get a fast
// queue-full refusal instead of unbounded queueing.
//
// SIGTERM or SIGINT starts a graceful drain: the listener closes, new
// requests are refused with a draining status, in-flight transactions run to
// completion (commit or §3.4 compensation), the write-ahead log is forced,
// and — unless -check=false — the twelve-component TPC-C consistency
// constraint is verified over the final database, with compensated
// new-order holes observed server-side. Violations exit non-zero, so a CI
// smoke run asserts end-to-end integrity just by checking the exit code.
//
// With -metrics-addr set, the shared debug endpoint (internal/debughttp)
// serves /metrics (engine, lock, WAL, latency-anatomy, admission and per-RPC
// series in Prometheus text format), /debug/locks, /debug/waitsfor,
// /debug/anatomy and /debug/pprof. With -slow-txn-threshold set, every
// transaction slower than the threshold is dumped to -slow-txn-log as one
// JSONL record carrying its full per-stage breakdown and event history.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	_ "accdb/internal/backends"
	"accdb/internal/core"
	"accdb/internal/debughttp"
	"accdb/internal/server"
	"accdb/internal/tpcc"
	"accdb/internal/trace"
	"accdb/internal/wal"
)

func main() {
	var (
		addr         = flag.String("addr", "127.0.0.1:7654", "listen address for the wire protocol")
		mode         = flag.String("mode", "acc", "scheduler: acc | baseline | two-level")
		maxInFlight  = flag.Int("max-inflight", server.DefaultMaxInFlight, "admission bound on concurrently executing requests")
		waitTimeout  = flag.Duration("wait-timeout", 10*time.Second, "lock-wait safety net")
		force        = flag.Duration("force", 0, "simulated log force latency (memory log)")
		walDir       = flag.String("wal-dir", "", "back the log with segment files in this directory")
		groupCommit  = flag.Duration("group-commit", 0, "cross-session group-commit window: a force leader waits this long so concurrent commits share one log sync (0 disables)")
		seed         = flag.Int64("seed", 1, "TPC-C load seed")
		metricsAddr  = flag.String("metrics-addr", "", "serve /metrics, /debug/locks, /debug/waitsfor, /debug/anatomy and /debug/pprof on this address (e.g. :6061)")
		slowThr      = flag.Duration("slow-txn-threshold", 0, "dump any transaction slower than this to -slow-txn-log as JSONL, with its full stage breakdown and event history (0 disables)")
		slowLog      = flag.String("slow-txn-log", "slow-txns.jsonl", "destination for -slow-txn-threshold dumps")
		traceOut     = flag.String("trace", "", "write structured events to this file (.json: Chrome trace_event; otherwise JSONL)")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "bound on the graceful drain; in-flight work past it is cancelled (and compensated)")
		check        = flag.Bool("check", true, "verify TPC-C consistency after the drain; violations exit non-zero")
		ready        = flag.String("ready-fd", "", "write one line with the bound address to this file once listening (harness handshake)")
	)
	flag.Parse()

	var m core.Mode
	switch *mode {
	case "acc":
		m = core.ModeACC
	case "baseline":
		m = core.ModeBaseline
	case "two-level":
		m = core.ModeTwoLevel
	default:
		fatal(fmt.Errorf("unknown -mode %q", *mode))
	}

	var tr *trace.Tracer
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fatal(err)
		}
		if strings.HasSuffix(*traceOut, ".json") {
			tr = trace.New(trace.NewChromeSink(f))
		} else {
			tr = trace.New(trace.NewJSONLSink(f))
		}
		defer func() {
			if err := tr.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "accd: closing trace:", err)
			}
		}()
	}

	scale := tpcc.DefaultScale()
	db := core.NewDB()
	if err := tpcc.CreateSchema(db); err != nil {
		fatal(err)
	}
	if err := tpcc.Load(db, scale, *seed); err != nil {
		fatal(err)
	}
	types := tpcc.BuildTypes()
	var dlog *wal.Log
	if *walDir != "" {
		var err error
		dlog, err = wal.Open(*walDir, wal.Options{ForceLatency: *force, GroupWindow: *groupCommit})
		if err != nil {
			fatal(err)
		}
		defer dlog.Close()
	}
	eng := core.New(db, types.Tables,
		core.WithMode(m),
		core.WithWaitTimeout(*waitTimeout),
		core.WithForceLatency(*force),
		core.WithTracer(tr),
		core.WithWAL(dlog),
	)
	if _, err := tpcc.Register(eng, types, scale); err != nil {
		fatal(err)
	}

	// The latency-anatomy layer turns on with either consumer: the debug
	// endpoint's live histograms, or the slow-transaction flight recorder.
	// It attaches to the server (not the engine): the server starts each
	// request's span at frame read, so the engine must not start its own.
	var anatomy *trace.Anatomy
	if *metricsAddr != "" || *slowThr > 0 {
		acfg := trace.AnatomyConfig{SlowThreshold: *slowThr, Tracer: tr}
		if *slowThr > 0 {
			f, err := os.Create(*slowLog)
			if err != nil {
				fatal(err)
			}
			acfg.SlowWriter = f
		}
		anatomy = trace.NewAnatomy(acfg)
	}

	protos := tpcc.ArgsPrototypes()
	holes := tpcc.NewHoleTracker()
	srv := server.New(server.Config{
		Engine: eng,
		NewArgs: func(name string) any {
			if f, ok := protos[name]; ok {
				return f()
			}
			return nil
		},
		MaxInFlight: *maxInFlight,
		Tracer:      tr,
		Anatomy:     anatomy,
		OnOutcome:   holes.Observe,
	})

	if *metricsAddr != "" {
		dbg := debughttp.New(tr, anatomy)
		dbg.SetEngine(eng)
		dbg.SetRPCMetrics(srv.WriteMetrics)
		if err := dbg.Start(*metricsAddr); err != nil {
			fatal(err)
		}
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "accd: serving %s TPC-C on %s (max in-flight %d)\n",
		m, ln.Addr(), *maxInFlight)
	if *ready != "" {
		if err := os.WriteFile(*ready, []byte(ln.Addr().String()+"\n"), 0o644); err != nil {
			fatal(err)
		}
	}

	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGTERM, syscall.SIGINT)
	select {
	case sig := <-sigs:
		fmt.Fprintf(os.Stderr, "accd: %v: draining (timeout %v)\n", sig, *drainTimeout)
	case err := <-serveErr:
		fatal(fmt.Errorf("accd: serve: %w", err))
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "accd: drain incomplete:", err)
	}
	st := srv.Stats()
	es := eng.Snapshot()
	fmt.Fprintf(os.Stderr,
		"accd: drained: admitted=%d rejected_full=%d rejected_draining=%d commits=%d compensations=%d\n",
		st.Admitted, st.RejectedFull, st.RejectedDraining, es.Commits, es.Compensations)

	if *check {
		if errs := tpcc.CheckConsistency(db, scale, holes.Holes()); len(errs) > 0 {
			for _, e := range errs {
				fmt.Fprintln(os.Stderr, "accd: consistency violation:", e)
			}
			os.Exit(1)
		}
		fmt.Fprintln(os.Stderr, "accd: consistency check passed")
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "accd:", err)
	os.Exit(1)
}
