package main

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"accdb/internal/experiment"
	"accdb/internal/fault"
)

// runFault drives the -fault flag: one crash-matrix case (or all of them)
// from the command line, printing the same verdicts the TestCrashMatrix
// harness asserts. A case is identified by its (point, seed, nth) triple and
// replays deterministically, so a failing case reported here can be handed
// to a test verbatim.
func runFault(name string, nth uint64, seed int64, walDir string) {
	points := fault.Points()
	if name == "list" {
		fmt.Printf("%-28s %-6s %s\n", "POINT", "EFFECT", "DESCRIPTION")
		for _, p := range points {
			fmt.Printf("%-28s %-6s %s\n", p.Name, p.Effect, p.Desc)
		}
		return
	}

	var cases []fault.Info
	if name == "all" {
		cases = points
	} else {
		for _, p := range points {
			if p.Name == name {
				cases = []fault.Info{p}
				break
			}
		}
		if cases == nil {
			fatal(fmt.Errorf("unknown fault point %q (use -fault list)", name))
		}
	}

	if walDir == "" {
		dir, err := os.MkdirTemp("", "accbench-fault-*")
		if err != nil {
			fatal(err)
		}
		defer os.RemoveAll(dir)
		walDir = dir
	}

	failed := 0
	for _, p := range cases {
		dir := filepath.Join(walDir, p.Name)
		if err := os.MkdirAll(dir, 0o755); err != nil {
			fatal(err)
		}
		// Coordinator points only fire in a partitioned deployment; they run
		// through the partitioned harness (4 partitions, remote-heavy mix).
		if strings.HasPrefix(p.Name, "partition.") {
			res, err := experiment.RunPartitionCrash(experiment.PartitionCrashConfig{
				Point:  p,
				Nth:    nth,
				Seed:   seed,
				WALDir: dir,
			})
			if err != nil {
				fatal(fmt.Errorf("%s: %w", p.Name, err))
			}
			verdict := "ok"
			if !res.Fired {
				verdict = "DID NOT FIRE"
			}
			if len(res.Violations)+len(res.RerunViolations) > 0 {
				verdict = "INCONSISTENT"
			}
			if verdict != "ok" {
				failed++
			}
			fmt.Printf("%-28s fired=%-5v committed=%-5d compensated=%-4d forward=%-2d undone=%-2d rerun=%-5d %s\n",
				p.Name, res.Fired, res.Committed, res.Compensated, res.ForwardDriven, res.Undone, res.RerunCompleted, verdict)
			for _, v := range res.Violations {
				fmt.Printf("%-28s recovered state: %v\n", "", v)
			}
			for _, v := range res.RerunViolations {
				fmt.Printf("%-28s after re-run: %v\n", "", v)
			}
			continue
		}
		res, err := experiment.RunCrash(experiment.CrashConfig{
			Point:  p,
			Nth:    nth,
			Seed:   seed,
			WALDir: dir,
		})
		if err != nil {
			fatal(fmt.Errorf("%s: %w", p.Name, err))
		}
		verdict := "ok"
		if !res.Fired {
			verdict = "DID NOT FIRE"
		}
		if len(res.Violations)+len(res.RerunViolations) > 0 {
			verdict = "INCONSISTENT"
		}
		if verdict != "ok" {
			failed++
		}
		fmt.Printf("%-28s fired=%-5v committed=%-5d compensated=%-4d rerun=%-5d %s\n",
			p.Name, res.Fired, res.Committed, res.Compensated, res.RerunCompleted, verdict)
		if res.TornTail != nil {
			fmt.Printf("%-28s torn tail at offset %d (%d bytes discarded)\n",
				"", res.TornTail.Offset, res.TornTail.DiscardedBytes)
		}
		for _, v := range res.Violations {
			fmt.Printf("%-28s recovered state: %v\n", "", v)
		}
		for _, v := range res.RerunViolations {
			fmt.Printf("%-28s after re-run: %v\n", "", v)
		}
	}
	if failed > 0 {
		fatal(fmt.Errorf("%d of %d crash cases failed", failed, len(cases)))
	}
}
