package main

import (
	"context"
	"fmt"
	"sort"
	"time"

	"accdb/internal/core"
	"accdb/internal/sim"
	"accdb/internal/tpcc"
	"accdb/pkg/accclient"
)

// runNet drives the TPC-C closed loop against a remote accd instead of an
// in-process engine: each terminal's transactions go through a shared
// accclient pool, so the measured path includes the wire protocol,
// admission control, and the client's retry policy. The server owns the
// database, so no consistency check runs here — accd verifies it at drain.
func runNet(addr string, terminals, pool int, duration, warmup, think time.Duration, seed int64, tier core.ReadTier, warehouses, remotePct int, readHeavy, verbose bool) error {
	cli, err := accclient.Dial(addr, accclient.WithPoolSize(pool))
	if err != nil {
		return err
	}
	defer cli.Close()

	scale := tpcc.DefaultScale()
	if warehouses > scale.Warehouses {
		// Must match the server: a partitioned accd widens its warehouse
		// count to its partition count, and the generated WIDs have to cover
		// it for any transaction to leave partition 0.
		scale.Warehouses = warehouses
	}
	cfg := tpcc.DefaultWorkloadConfig(scale)
	cfg.RemotePercent = remotePct
	cfg.ReadTier = tier
	if readHeavy {
		cfg.Mix = tpcc.ReadHeavyMix()
	}
	w := tpcc.NewRemoteWorkload(func(name string, args any) error {
		return cli.Run(context.Background(), name, args)
	}, cfg)
	w.SetReadRunner(func(name string, args any, t core.ReadTier) error {
		return cli.RunTier(context.Background(), name, args, t)
	})

	fmt.Printf("== network TPC-C against %s: %d terminals, pool %d, read tier %s ==\n", addr, terminals, pool, tier)
	res := sim.Run(sim.Config{
		Terminals: terminals,
		Duration:  duration,
		Warmup:    warmup,
		ThinkTime: think,
		Seed:      seed,
	}, w)

	total := res.Recorder.Total()
	fmt.Printf("throughput %.1f txn/s  %s\n", res.Throughput(), total)
	st := cli.Stats()
	fmt.Printf("client: requests=%d attempts=%d retries=%d transport_errors=%d\n",
		st.Requests, st.Attempts, st.Retries, st.TransportErrors)
	if verbose {
		byType := res.Recorder.ByType()
		names := make([]string, 0, len(byType))
		for name := range byType {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			fmt.Printf("  %-12s %s\n", name, byType[name])
		}
	}
	return nil
}
