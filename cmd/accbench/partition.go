package main

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"accdb/internal/experiment"
)

// runPartitionBench drives the -partitions flag: one partitioned TPC-C
// measurement per remote-warehouse percentage, printing the single- vs
// cross-partition throughput split (see EXPERIMENTS.md, "Scaling out").
func runPartitionBench(partitions int, remoteList string, duration, warmup time.Duration, seed int64) {
	var pcts []int
	for _, part := range strings.Split(remoteList, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 0 || n > 100 {
			fatal(fmt.Errorf("bad -remote-pct entry %q", part))
		}
		pcts = append(pcts, n)
	}
	fmt.Printf("== Partitioned throughput: %d partitions ==\n", partitions)
	fmt.Printf("%10s %12s %12s %12s %10s %8s %8s\n",
		"remote%", "total/s", "single/s", "cross/s", "shots", "undos", "deadlocks")
	for _, pct := range pcts {
		res, err := experiment.RunPartitionBench(experiment.PartitionBenchConfig{
			Partitions:    partitions,
			RemotePercent: pct,
			Duration:      duration,
			Warmup:        warmup,
			Seed:          seed,
		})
		if err != nil {
			fatal(err)
		}
		total := float64(res.Completed) / res.Elapsed.Seconds()
		fmt.Printf("%10d %12.1f %12.1f %12.1f %10d %8d %8d\n",
			pct, total, res.SingleTput, res.CrossTput,
			res.Stats.ShotsRun, res.Stats.ShotUndos, res.Stats.CrossDeadlocks)
	}
}
