// Command accbench regenerates the paper's §5 experiments: for each figure
// it sweeps the terminal count (or server count), measures the unmodified
// strict-2PL system and the ACC under identical TPC-C loads, and prints the
// non-ACC/ACC ratio series the paper plots.
//
// Usage:
//
//	accbench -experiment fig2|fig3|fig4|servers|all [flags]
//
// The defaults reproduce the paper's operating region at laptop scale; see
// EXPERIMENTS.md for recorded results.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	_ "accdb/internal/backends"
	"accdb/internal/core"
	"accdb/internal/debughttp"
	"accdb/internal/experiment"
	"accdb/internal/spi"
	"accdb/internal/trace"
)

// closeTrace flushes and closes the -trace output; set when tracing is on so
// both the normal exit and fatal() finish the file.
var closeTrace func()

func main() {
	var (
		which    = flag.String("experiment", "all", "fig2 | fig3 | fig4 | servers | ablation | all")
		duration = flag.Duration("duration", 6*time.Second, "measured interval per point per system")
		warmup   = flag.Duration("warmup", 1*time.Second, "warmup before measuring")
		think    = flag.Duration("think", 800*time.Millisecond, "mean terminal think time")
		service  = flag.Duration("service", 600*time.Microsecond, "per-statement server CPU time")
		compute  = flag.Duration("compute", 500*time.Microsecond, "fig3 inter-statement compute time")
		force    = flag.Duration("force", 100*time.Microsecond, "log force latency")
		servers  = flag.Int("servers", 3, "database server processes")
		skew     = flag.Float64("skew", 0.5, "fig2 hot-district probability for the skewed curve")
		seed     = flag.Int64("seed", 1, "workload seed")
		termList = flag.String("terminals", "", "comma-separated terminal counts (default 4,8,16,24,32,48,60)")
		verbose  = flag.Bool("v", false, "print per-system detail")
		traceOut = flag.String("trace", "", "write structured events to this file (.json: Chrome trace_event for chrome://tracing; otherwise JSONL)")
		metrics  = flag.String("metrics-addr", "", "serve /metrics, /debug/locks, /debug/waitsfor, /debug/anatomy and /debug/pprof on this address (e.g. :6060)")
		walDir   = flag.String("wal-dir", "", "back the log with CRC-framed segment files in this directory instead of the in-memory log")
		groupWin = flag.Duration("group-commit", 0, "with -wal-dir: group-commit window; a force leader waits this long so concurrent commits share one sync (0 disables)")
		faultPt  = flag.String("fault", "", "run one crash-matrix case: trip this fault point (see -fault list) mid-load, recover, verify; 'all' runs every point, 'list' prints the catalog")
		faultNth = flag.Uint64("fault-nth", 3, "fire the -fault point on its nth hit")
		faultSd  = flag.Int64("fault-seed", 42, "seed for the -fault controller and load (a (point, seed, nth) triple replays exactly)")
		netAddr  = flag.String("net", "", "drive TPC-C over the wire against a running accd at this address instead of in-process")
		netTerms = flag.Int("net-terminals", 64, "terminal count for -net")
		netPool  = flag.Int("net-pool", 8, "client connection pool size for -net")
		netWhs   = flag.Int("net-warehouses", 0, "with -net: generate load across this many warehouses (match the server's partition count; 0 keeps the default scale)")
		netRem   = flag.Int("net-remote-pct", 0, "with -net: percentage of new-orders with a remote supply warehouse (cross-partition on a partitioned accd)")
		slowThr  = flag.Duration("slow-txn-threshold", 0, "dump any transaction slower than this to -slow-txn-log as JSONL, with its full stage breakdown and event history (0 disables)")
		slowLog  = flag.String("slow-txn-log", "slow-txns.jsonl", "destination for -slow-txn-threshold dumps")
		tierName = flag.String("read-tier", "locked", "consistency tier for the read-only types (order-status, stock-level): locked | asap | committed | snapshot")
		readHvy  = flag.Bool("read-heavy", false, "swap the TPC-C mix for the read-heavy mix (mostly order-status/stock-level over a thin writer stream)")
		parts    = flag.Int("partitions", 0, "measure a partitioned deployment instead: TPC-C against this many engines behind the multi-shot coordinator, reporting the single- vs cross-partition throughput split")
		remote   = flag.String("remote-pct", "10", "with -partitions: comma-separated remote-warehouse percentages of new-orders (each foreign-partition supply line runs as a remote shot)")
	)
	flag.Parse()

	tier, err := core.ParseReadTier(*tierName)
	if err != nil {
		fatal(err)
	}

	if *faultPt != "" {
		runFault(*faultPt, *faultNth, *faultSd, *walDir)
		return
	}

	if *parts > 0 {
		runPartitionBench(*parts, *remote, *duration, *warmup, *seed)
		return
	}

	if *netAddr != "" {
		if err := runNet(*netAddr, *netTerms, *netPool, *duration, *warmup, *think, *seed, tier, *netWhs, *netRem, *readHvy, *verbose); err != nil {
			fatal(err)
		}
		return
	}

	cfg := experiment.Defaults()
	cfg.Duration = *duration
	cfg.Warmup = *warmup
	cfg.ThinkTime = *think
	cfg.ServiceTime = *service
	cfg.ForceLatency = *force
	cfg.Servers = *servers
	cfg.Seed = *seed
	cfg.WALDir = *walDir
	cfg.GroupWindow = *groupWin
	cfg.ReadTier = tier
	cfg.ReadHeavy = *readHvy

	var tr *trace.Tracer
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fatal(err)
		}
		var sink trace.Sink
		if strings.HasSuffix(*traceOut, ".json") {
			sink = trace.NewChromeSink(f)
		} else {
			sink = trace.NewJSONLSink(f)
		}
		tr = trace.New(sink)
		cfg.Tracer = tr
		closeTrace = func() {
			if err := tr.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "accbench: closing trace:", err)
			}
			if n := tr.Drops(); n > 0 {
				fmt.Fprintf(os.Stderr, "accbench: trace dropped %d events under backpressure\n", n)
			}
			closeTrace = nil
		}
		defer closeTrace()
	}
	// The latency-anatomy layer turns on with either consumer: the debug
	// endpoint's live histograms, or the slow-transaction flight recorder.
	if *metrics != "" || *slowThr > 0 {
		acfg := trace.AnatomyConfig{SlowThreshold: *slowThr, Tracer: tr}
		if *slowThr > 0 {
			f, err := os.Create(*slowLog)
			if err != nil {
				fatal(err)
			}
			acfg.SlowWriter = f
		}
		cfg.Anatomy = trace.NewAnatomy(acfg)
	}
	if *metrics != "" {
		dbg := debughttp.New(tr, cfg.Anatomy)
		if err := dbg.Start(*metrics); err != nil {
			fatal(err)
		}
		cfg.OnEngine = dbg.SetEngine
	}

	terminals := experiment.DefaultTerminals
	if *termList != "" {
		terminals = nil
		for _, part := range strings.Split(*termList, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil {
				fatal(err)
			}
			terminals = append(terminals, n)
		}
	}

	run := func(name string) bool { return *which == "all" || *which == name }

	if run("fig2") {
		fmt.Println("== Figure 2: The Effect of Hotspots ==")
		fmt.Println("-- standard (uniform districts) --")
		sweepAndPrint(cfg, terminals, *verbose)
		fmt.Printf("-- skewed (hot district p=%.2f) --\n", *skew)
		c := cfg
		c.Skew = *skew
		sweepAndPrint(c, terminals, *verbose)
	}
	if run("fig3") {
		fmt.Println("== Figure 3: The Effect of Transaction Duration ==")
		fmt.Println("-- without compute time --")
		sweepAndPrint(cfg, terminals, *verbose)
		fmt.Printf("-- with %v compute time between statements --\n", *compute)
		c := cfg
		c.ComputeTime = *compute
		sweepAndPrint(c, terminals, *verbose)
	}
	if run("fig4") {
		fmt.Println("== Figure 4: Response Time and Throughput ==")
		points, err := experiment.Sweep(cfg, terminals)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%10s %12s %12s\n", "terminals", "resp ratio", "tput ratio")
		for _, p := range points {
			fmt.Printf("%10d %12.3f %12.3f\n", p.Terminals, p.RespRatio(), p.TputRatio())
			detail(p, *verbose)
		}
	}
	if run("servers") {
		fmt.Println("== Experiment 4: The Effect of the Number of Servers ==")
		c := cfg
		c.Terminals = 48
		points, err := experiment.ServerSweep(c, []int{1, 2, 3, 4})
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%10s %12s %12s\n", "servers", "resp ratio", "tput ratio")
		for _, p := range points {
			fmt.Printf("%10d %12.3f %12.3f\n", p.Servers, p.RespRatio(), p.TputRatio())
			detail(p, *verbose)
		}
	}
	if run("ablation") {
		fmt.Println("== Ablation: one-level vs two-level vs eager locking ==")
		ablation(cfg, *verbose)
	}
}

func sweepAndPrint(cfg experiment.Config, terminals []int, verbose bool) {
	points, err := experiment.Sweep(cfg, terminals)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("%10s %12s %14s %14s\n", "terminals", "resp ratio", "base mean", "acc mean")
	for _, p := range points {
		fmt.Printf("%10d %12.3f %14v %14v\n",
			p.Terminals, p.RespRatio(),
			p.Baseline.Mean.Round(time.Microsecond), p.ACC.Mean.Round(time.Microsecond))
		detail(p, verbose)
	}
}

func detail(p *experiment.Point, verbose bool) {
	if !verbose {
		return
	}
	fmt.Printf("%10s   base: n=%d tput=%.1f/s deadlocks=%d retries=%d\n", "",
		p.Baseline.Completed, p.Baseline.Throughput, p.Baseline.Locks.Deadlocks, p.Baseline.Engine.TxnRetries)
	fmt.Printf("%10s   acc:  n=%d tput=%.1f/s deadlocks=%d stepRetries=%d compensations=%d\n", "",
		p.ACC.Completed, p.ACC.Throughput, p.ACC.Locks.Deadlocks, p.ACC.Engine.StepRetries, p.ACC.Engine.Compensations)
	for _, r := range []*experiment.RunResult{p.Baseline, p.ACC} {
		avg := time.Duration(0)
		if r.Locks.Waits > 0 {
			avg = time.Duration(r.Locks.WaitNanos / r.Locks.Waits)
		}
		fmt.Printf("%10s   %-9s locks: acq=%d waits=%d avgWait=%v\n", "",
			r.Mode, r.Locks.Acquisitions, r.Locks.Waits, avg.Round(time.Microsecond))
		type kv struct {
			k string
			v spi.ClassStats
		}
		var classes []kv
		for k, v := range r.LockClass {
			classes = append(classes, kv{k, v})
		}
		sort.Slice(classes, func(i, j int) bool { return classes[i].v.WaitNanos > classes[j].v.WaitNanos })
		for i, c := range classes {
			if i >= 4 {
				break
			}
			fmt.Printf("%10s     %-32s waits=%-5d total=%v\n", "",
				c.k, c.v.Waits, time.Duration(c.v.WaitNanos).Round(time.Millisecond))
		}
	}
	for _, name := range []string{"new_order", "payment", "delivery", "order_status", "stock_level"} {
		b, a := p.Baseline.ByType[name], p.ACC.ByType[name]
		fmt.Printf("%10s   %-12s base n=%-5d mean=%-12v | acc n=%-5d mean=%v\n", "",
			name, b.Count, b.Mean.Round(time.Microsecond), a.Count, a.Mean.Round(time.Microsecond))
	}
}

func ablation(cfg experiment.Config, verbose bool) {
	cfg.Terminals = 32
	base, err := experiment.Run(withMode(cfg, core.ModeBaseline))
	if err != nil {
		fatal(err)
	}
	onelevel, err := experiment.Run(withMode(cfg, core.ModeACC))
	if err != nil {
		fatal(err)
	}
	twolevel, err := experiment.Run(withMode(cfg, core.ModeTwoLevel))
	if err != nil {
		fatal(err)
	}
	eager := withMode(cfg, core.ModeACC)
	eager.EagerAssertionLocks = true
	eagerRes, err := experiment.Run(eager)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("%-22s %14s %12s\n", "scheduler", "mean resp", "tput/s")
	for _, row := range []struct {
		name string
		r    *experiment.RunResult
	}{
		{"baseline (strict 2PL)", base},
		{"ACC one-level", onelevel},
		{"ACC two-level", twolevel},
		{"ACC eager (simplified)", eagerRes},
	} {
		fmt.Printf("%-22s %14v %12.1f\n", row.name,
			row.r.Mean.Round(time.Microsecond), row.r.Throughput)
	}
	_ = verbose
}

func withMode(cfg experiment.Config, mode core.Mode) experiment.Config {
	cfg.Mode = mode
	return cfg
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "accbench:", err)
	if closeTrace != nil {
		closeTrace() // os.Exit skips defers; finish the trace file first
	}
	os.Exit(1)
}
