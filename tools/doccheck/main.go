// Command doccheck enforces the repository's documentation floor without
// external dependencies, so it runs in the offline build: every package must
// carry a godoc package comment, and — in the packages named by -exported —
// every exported top-level declaration must carry a doc comment. CI runs it
// alongside revive's exported rule; doccheck is the part that works with the
// standard library alone.
//
// The -md flag adds a staleness check over prose: in each named markdown
// file, every backticked repo path (`internal/core/readtier.go`, `cmd/accd`)
// and every relative markdown link must point at something that exists, so a
// refactor that moves a file fails CI until the docs move with it.
//
// The -boundary flag enforces import boundaries. A rule reads either
// dir=path;path — no non-test file under dir may import any of the listed
// package paths — or dir=only:path;path — files under dir may import no
// module-internal package beyond the listed ones (an allowlist; imports from
// outside the module are never restricted). The defaults keep the layering
// honest: internal/core reaches its backends only through accdb/internal/spi
// (never accdb/internal/storage or accdb/internal/lock directly), the
// partition router sits strictly above the engine — it may import only the
// spi/core/wal/trace/fault surface — and no backend may reach up into
// internal/partition.
//
// Usage:
//
//	go run ./tools/doccheck [-exported dir1,dir2] [-md doc1.md,doc2.md] [-boundary rules] [root]
package main

import (
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
)

// modulePrefix identifies module-internal import paths: allowlist
// (dir=only:...) rules restrict only these, never standard-library or
// external imports.
const modulePrefix = "accdb/"

// boundaryRule is one parsed -boundary rule: a deny-list of import paths,
// or (allow) an allowlist of the only module-internal imports permitted.
type boundaryRule struct {
	allow bool
	pkgs  []string
}

// violation reports why importing path breaks the rule, or "" if it is fine.
func (br boundaryRule) violation(path string) string {
	if br.allow {
		if !strings.HasPrefix(path, modulePrefix) {
			return ""
		}
		for _, p := range br.pkgs {
			if path == p {
				return ""
			}
		}
		return "allowed imports: " + strings.Join(br.pkgs, ", ")
	}
	for _, p := range br.pkgs {
		if path == p {
			return "forbidden here"
		}
	}
	return ""
}

func main() {
	exported := flag.String("exported", "internal/lock,internal/core,internal/spi",
		"comma-separated package dirs whose exported declarations must all be documented")
	mdFiles := flag.String("md", "",
		"comma-separated markdown files whose backticked repo paths and relative links must exist")
	boundary := flag.String("boundary",
		"internal/core=accdb/internal/storage;accdb/internal/lock,"+
			"internal/partition=only:accdb/internal/spi;accdb/internal/core;accdb/internal/wal;accdb/internal/trace;accdb/internal/fault,"+
			"internal/storage=accdb/internal/partition,"+
			"internal/lock=accdb/internal/partition,"+
			"internal/memstore=accdb/internal/partition,"+
			"internal/backends=accdb/internal/partition",
		"comma-separated import-boundary rules, dir=forbidden;forbidden or dir=only:allowed;allowed (non-test files only)")
	flag.Parse()
	root := "."
	if flag.NArg() > 0 {
		root = flag.Arg(0)
	}

	strict := make(map[string]bool)
	for _, d := range strings.Split(*exported, ",") {
		if d = strings.TrimSpace(d); d != "" {
			strict[filepath.Clean(d)] = true
		}
	}

	rules := make(map[string][]boundaryRule) // package dir -> boundary rules
	for _, rule := range strings.Split(*boundary, ",") {
		if rule = strings.TrimSpace(rule); rule == "" {
			continue
		}
		dir, pkgs, ok := strings.Cut(rule, "=")
		if !ok {
			fmt.Fprintf(os.Stderr, "doccheck: bad -boundary rule %q (want dir=pkg;pkg or dir=only:pkg;pkg)\n", rule)
			os.Exit(2)
		}
		br := boundaryRule{}
		if rest, found := strings.CutPrefix(pkgs, "only:"); found {
			br.allow = true
			pkgs = rest
		}
		for _, p := range strings.Split(pkgs, ";") {
			if p = strings.TrimSpace(p); p != "" {
				br.pkgs = append(br.pkgs, p)
			}
		}
		rules[filepath.Clean(dir)] = append(rules[filepath.Clean(dir)], br)
	}

	files := map[string][]string{} // package dir -> non-test .go files
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		name := d.Name()
		if d.IsDir() {
			if name == "testdata" || strings.HasPrefix(name, ".") && path != root {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			return nil
		}
		dir, _ := filepath.Rel(root, filepath.Dir(path))
		files[dir] = append(files[dir], path)
		return nil
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "doccheck:", err)
		os.Exit(1)
	}

	dirs := make([]string, 0, len(files))
	for d := range files {
		dirs = append(dirs, d)
	}
	sort.Strings(dirs)

	var problems []string
	fset := token.NewFileSet()
	for _, dir := range dirs {
		sort.Strings(files[dir])
		pkgDoc := false
		pkgName := ""
		for _, path := range files[dir] {
			f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
			if err != nil {
				problems = append(problems, fmt.Sprintf("%s: %v", path, err))
				continue
			}
			pkgName = f.Name.Name
			if f.Doc != nil {
				pkgDoc = true
			}
			if strict[dir] {
				problems = append(problems, undocumented(fset, f)...)
			}
			for _, br := range rules[dir] {
				for _, imp := range f.Imports {
					path := strings.Trim(imp.Path.Value, `"`)
					if msg := br.violation(path); msg != "" {
						p := fset.Position(imp.Pos())
						problems = append(problems, fmt.Sprintf(
							"%s:%d: import of %s crosses the %s boundary (%s)",
							p.Filename, p.Line, path, dir, msg))
					}
				}
			}
		}
		if !pkgDoc && pkgName != "" {
			problems = append(problems, fmt.Sprintf("%s: package %s has no package comment", dir, pkgName))
		}
	}

	for _, doc := range strings.Split(*mdFiles, ",") {
		if doc = strings.TrimSpace(doc); doc != "" {
			problems = append(problems, checkMarkdown(root, doc)...)
		}
	}

	for _, p := range problems {
		fmt.Println(p)
	}
	if len(problems) > 0 {
		fmt.Fprintf(os.Stderr, "doccheck: %d problems\n", len(problems))
		os.Exit(1)
	}
}

// pathSpan matches a backticked span that reads as a repo path: slash-joined
// simple segments with no spaces, flags, globs, or code syntax. Command lines
// (`go test ./...`), symbol references (`core.RunRead`) and URLs all fail the
// pattern and are ignored.
var pathSpan = regexp.MustCompile("`([A-Za-z0-9_.\\-]+(?:/[A-Za-z0-9_.\\-]+)+)`")

// mdLink matches the target of an inline markdown link, minus any #fragment.
var mdLink = regexp.MustCompile(`\]\(([^)#\s]+)[^)]*\)`)

// checkMarkdown reports every backticked repo path and relative link in the
// named doc that does not exist under root. Fenced code blocks are skipped —
// they hold example commands and output, not references.
func checkMarkdown(root, doc string) []string {
	data, err := os.ReadFile(filepath.Join(root, doc))
	if err != nil {
		return []string{fmt.Sprintf("%s: %v", doc, err)}
	}
	exists := func(rel string) bool {
		_, err := os.Stat(filepath.Join(root, rel))
		return err == nil
	}
	var out []string
	fenced := false
	for i, line := range strings.Split(string(data), "\n") {
		if strings.HasPrefix(strings.TrimSpace(line), "```") {
			fenced = !fenced
			continue
		}
		if fenced {
			continue
		}
		for _, m := range pathSpan.FindAllStringSubmatch(line, -1) {
			p := m[1]
			// Only vouch for references into the repo's trees or doc files;
			// other slash-bearing spans (URLs sans scheme, metric label
			// pairs) are not path claims.
			first := p[:strings.Index(p, "/")]
			switch first {
			case "internal", "cmd", "pkg", "tools", "examples", ".github":
			default:
				continue
			}
			if !exists(p) {
				out = append(out, fmt.Sprintf("%s:%d: backticked path %s does not exist", doc, i+1, p))
			}
		}
		for _, m := range mdLink.FindAllStringSubmatch(line, -1) {
			target := m[1]
			if strings.Contains(target, "://") || strings.HasPrefix(target, "mailto:") {
				continue
			}
			if !exists(filepath.Join(filepath.Dir(doc), target)) {
				out = append(out, fmt.Sprintf("%s:%d: link target %s does not exist", doc, i+1, target))
			}
		}
	}
	return out
}

// undocumented reports every exported top-level declaration in f that lacks
// a doc comment: funcs and methods (when the receiver type is exported too),
// and types, consts and vars — a spec inside a grouped declaration may carry
// its own comment instead of the group's.
func undocumented(fset *token.FileSet, f *ast.File) []string {
	var out []string
	report := func(pos token.Pos, what, name string) {
		p := fset.Position(pos)
		out = append(out, fmt.Sprintf("%s:%d: exported %s %s has no doc comment", p.Filename, p.Line, what, name))
	}
	for _, decl := range f.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			if !d.Name.IsExported() || d.Doc != nil {
				continue
			}
			if d.Recv != nil && !exportedRecv(d.Recv) {
				continue
			}
			report(d.Pos(), "function", d.Name.Name)
		case *ast.GenDecl:
			for _, spec := range d.Specs {
				switch s := spec.(type) {
				case *ast.TypeSpec:
					if s.Name.IsExported() && d.Doc == nil && s.Doc == nil && s.Comment == nil {
						report(s.Pos(), "type", s.Name.Name)
					}
				case *ast.ValueSpec:
					for _, n := range s.Names {
						if n.IsExported() && d.Doc == nil && s.Doc == nil && s.Comment == nil {
							report(n.Pos(), "value", n.Name)
							break
						}
					}
				}
			}
		}
	}
	return out
}

// exportedRecv reports whether a method's receiver type is exported.
func exportedRecv(recv *ast.FieldList) bool {
	if len(recv.List) == 0 {
		return false
	}
	t := recv.List[0].Type
	for {
		switch x := t.(type) {
		case *ast.StarExpr:
			t = x.X
		case *ast.IndexExpr:
			t = x.X
		case *ast.IndexListExpr:
			t = x.X
		case *ast.Ident:
			return x.IsExported()
		default:
			return false
		}
	}
}
