module accdb

go 1.22
