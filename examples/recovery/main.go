// Recovery walkthrough: crash a transfer mid-flight with a deterministic
// fault injection, restart over the surviving log segments, and watch
// recovery compensate the half-done transaction (DESIGN.md §10).
//
// The demo builds the quickstart bank over a disk-backed WAL, arms the
// core.commit.force.crash fault point (the process dies at the commit force,
// so the transfer's durable prefix ends after its debit step), then reopens
// the log in a "new process": analysis finds the pending transaction, redo
// replays its completed step, and a compensating step — run under
// re-acquired exposure and reservation locks — returns the debited money.
package main

import (
	"errors"
	"fmt"
	"log"
	"os"

	_ "accdb/internal/backends"
	"accdb/internal/core"
	"accdb/internal/fault"
	"accdb/internal/interference"
	"accdb/internal/spi"
	"accdb/internal/wal"
)

type transferArgs struct{ From, To, Amount int64 }

// bank is one "process": base state freshly loaded (the archive copy), the
// log reopened from dir (the surviving disk).
type bank struct {
	db  *core.DB
	eng *core.Engine
	log *wal.Log
	bal int // balance column index
}

func build(dir string) (*bank, error) {
	db := core.NewDB()
	accounts, err := db.CreateTable(spi.MustSchema("accounts", []spi.Column{
		{Name: "id", Kind: spi.KindInt},
		{Name: "balance", Kind: spi.KindInt},
	}, "id"))
	if err != nil {
		return nil, err
	}
	for id := 1; id <= 2; id++ {
		if err := accounts.Insert(spi.Row{spi.Int(id), spi.I64(1000)}); err != nil {
			return nil, err
		}
	}

	b := interference.NewBuilder()
	transferTxn := b.TxnType("transfer", 2)
	debit := b.StepType("transfer/debit")
	credit := b.StepType("transfer/credit")
	comp := b.StepType("transfer/compensate")
	inFlight := b.Assertion("A_IN_FLIGHT")
	for _, s := range []interference.StepTypeID{debit, credit, comp} {
		b.NoInterference(s, inFlight)
		b.AllowInterleaveEverywhere(s, transferTxn)
	}
	tables := b.Build()

	l, err := wal.Open(dir, wal.Options{})
	if err != nil {
		return nil, err
	}
	eng := core.New(db, tables, core.WithMode(core.ModeACC), core.WithWAL(l))

	balCol := accounts.Schema().MustCol("balance")
	add := func(tc *core.Ctx, id, delta int64) error {
		return tc.Update("accounts", []spi.Value{spi.I64(id)}, func(row spi.Row) error {
			row[balCol] = spi.I64(row[balCol].Int64() + delta)
			return nil
		})
	}
	aInFlight := &core.Assertion{
		ID:   inFlight,
		Name: "A_IN_FLIGHT",
		Covers: func(args any, item spi.Item) bool {
			a := args.(*transferArgs)
			return item.Table == "accounts" && item.Level == spi.LevelRow &&
				item.Key == spi.EncodeKey(spi.I64(a.From))
		},
	}
	eng.MustRegister(&core.TxnType{
		Name: "transfer",
		ID:   transferTxn,
		Steps: []core.Step{
			{Name: "debit", Type: debit, Body: func(tc *core.Ctx) error {
				a := tc.Args().(*transferArgs)
				return add(tc, a.From, -a.Amount)
			}},
			{Name: "credit", Type: credit, Pre: []*core.Assertion{aInFlight},
				Body: func(tc *core.Ctx) error {
					a := tc.Args().(*transferArgs)
					return add(tc, a.To, a.Amount)
				}},
		},
		Comp: &core.Compensation{
			Type: comp,
			Body: func(tc *core.Ctx, completed int) error {
				a := tc.Args().(*transferArgs)
				if completed >= 1 {
					return add(tc, a.From, a.Amount) // undo the debit
				}
				return nil
			},
		},
		// Recovery rebuilds the compensation's input from the work area the
		// end-of-step record forced to disk — so args must round-trip.
		EncodeArgs: func(args any) []byte {
			a := args.(*transferArgs)
			return spi.MarshalRow(nil, spi.Row{
				spi.I64(a.From), spi.I64(a.To), spi.I64(a.Amount),
			})
		},
		DecodeArgs: func(data []byte) (any, error) {
			row, _, err := spi.UnmarshalRow(data)
			if err != nil {
				return nil, err
			}
			return &transferArgs{From: row[0].Int64(), To: row[1].Int64(), Amount: row[2].Int64()}, nil
		},
	})
	return &bank{db: db, eng: eng, log: l, bal: balCol}, nil
}

func (b *bank) balance(id int64) int64 {
	row, err := b.db.Table("accounts").Get(spi.EncodeKey(spi.I64(id)))
	if err != nil {
		log.Fatal(err)
	}
	return row[b.bal].Int64()
}

func (b *bank) report(when string) int64 {
	a1, a2 := b.balance(1), b.balance(2)
	fmt.Printf("%-28s account1=%-5d account2=%-5d total=%d\n", when, a1, a2, a1+a2)
	return a1 + a2
}

func main() {
	dir, err := os.MkdirTemp("", "accdb-recovery-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// ---- Process 1: commit one transfer, then crash inside a second. ----
	b1, err := build(dir)
	if err != nil {
		log.Fatal(err)
	}
	if err := b1.eng.Run("transfer", &transferArgs{From: 1, To: 2, Amount: 100}); err != nil {
		log.Fatal(err)
	}
	b1.report("after committed transfer:")

	// Arm the fault: the very next commit force "kills the process" — the
	// debit step's end-of-step record is durable, the commit record is not.
	ctrl := fault.NewController(1)
	ctrl.Arm("core.commit.force.crash", fault.Spec{Effect: fault.Crash, Nth: 1})
	ctrl.Activate()
	// The doomed process keeps running in memory — that is the simulation
	// model: durability froze at the crash instant, so nothing it does from
	// here on survives the "kill". Its in-memory state is the state that is
	// about to be lost.
	if err := b1.eng.Run("transfer", &transferArgs{From: 1, To: 2, Amount: 250}); err != nil {
		log.Fatal(err)
	}
	fault.Deactivate()
	if ctrl.FiredPoint() == "" {
		log.Fatal("expected the injected crash to fire")
	}
	fmt.Printf("simulated crash at %q: durable log ends before the commit record\n", ctrl.FiredPoint())
	b1.report("doomed process saw:")
	b1.log.Close()

	// ---- Process 2: restart — fresh base state, reopened log, recover. ----
	b2, err := build(dir)
	if err != nil {
		log.Fatal(err)
	}
	defer b2.log.Close()
	if tt := b2.log.TornTail(); tt != nil && !tt.Clean() {
		log.Fatal(errors.New("log corrupt beyond a crash tail"))
	}
	res, err := b2.eng.RecoverLog(b2.log)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recovery: %d committed, %d compensated", res.Committed, len(res.CompensatedTxns))
	for _, c := range res.CompensatedTxns {
		a := c.Args.(*transferArgs)
		fmt.Printf(" (txn %d %s: %d->%d amount %d, undone)", c.ID, c.Type, a.From, a.To, a.Amount)
	}
	fmt.Println()
	if total := b2.report("after recovery:"); total != 2000 {
		log.Fatal("recovery lost money — conservation violated")
	}

	// The recovered engine is live: it keeps appending to the same log.
	if err := b2.eng.Run("transfer", &transferArgs{From: 2, To: 1, Amount: 40}); err != nil {
		log.Fatal(err)
	}
	if total := b2.report("after post-recovery work:"); total != 2000 {
		log.Fatal("post-recovery transfer lost money")
	}
	fmt.Println("ok: the half-done transfer was compensated, committed work survived")
}
