// Orderproc reproduces the paper's §4 worked example: a simple order
// processing system with new_order and bill transactions, the consistency
// conjunct I1 ("the number of orderlines of an order equals the order's
// number_of_distinct_items"), and the interference analysis that lets
// new_order instances interleave arbitrarily while bill is kept out from
// between the steps of a new_order on the same order.
//
// It runs a concurrent mix, verifies I1 with the formal assertion evaluator
// at quiescence, and exercises compensation (§4's "the order was compensated
// for and no order with order_id of o_num is in the orders table").
package main

import (
	"errors"
	"fmt"
	"log"
	"math/rand"
	"sync"

	"accdb/internal/assertion"
	_ "accdb/internal/backends"
	"accdb/internal/core"
	"accdb/internal/interference"
	"accdb/internal/spi"
)

// Schema per §4 (keys underlined in the paper).
var (
	ordersSchema = spi.MustSchema("orders", []spi.Column{
		{Name: "order_id", Kind: spi.KindInt},
		{Name: "customer_id", Kind: spi.KindInt},
		{Name: "number_of_distinct_items", Kind: spi.KindInt},
		{Name: "price", Kind: spi.KindInt}, // 0 until billed
	}, "order_id")
	stockSchema = spi.MustSchema("stock", []spi.Column{
		{Name: "item_id", Kind: spi.KindInt},
		{Name: "s_level", Kind: spi.KindInt},
	}, "item_id")
	pricesSchema = spi.MustSchema("prices", []spi.Column{
		{Name: "item_id", Kind: spi.KindInt},
		{Name: "price", Kind: spi.KindInt},
	}, "item_id")
	orderlinesSchema = spi.MustSchema("orderlines", []spi.Column{
		{Name: "order_id", Kind: spi.KindInt},
		{Name: "item_id", Kind: spi.KindInt},
		{Name: "ordered", Kind: spi.KindInt},
		{Name: "filled", Kind: spi.KindInt},
	}, "order_id", "item_id")
)

// i1 is the paper's I1 conjunct for one order, stated in the formal
// assertion language: |{ol | ol.order_id = o}| = o.number_of_distinct_items.
// The evaluator checks it at quiescence; the ACC itself never evaluates it —
// it locks its footprint and consults the interference tables.
var i1 = assertion.ForAll{
	Table: "orders",
	Body: assertion.CountEq{
		Table: "orderlines",
		Where: []assertion.Binding{{
			Column: "order_id",
			Value:  assertion.Col{Table: "orders", Column: "order_id"},
		}},
		Equals: assertion.Col{Table: "orders", Column: "number_of_distinct_items"},
	},
}

type newOrderArgs struct {
	customer int64
	items    []int64
	quants   []int64
	abortAt  int // -1: run to completion; otherwise abort before this line
	oNum     int64
	filled   []int64
}

type billArgs struct {
	order int64
	total int64
}

func main() {
	db := core.NewDB()
	orders := db.MustCreateTable(ordersSchema)
	stock := db.MustCreateTable(stockSchema)
	prices := db.MustCreateTable(pricesSchema)
	db.MustCreateTable(orderlinesSchema, "order_id")
	counter := db.MustCreateTable(spi.MustSchema("counter", []spi.Column{
		{Name: "id", Kind: spi.KindInt},
		{Name: "current_order_number", Kind: spi.KindInt},
	}, "id"))
	must(counter.Insert(spi.Row{spi.Int(0), spi.I64(1)}))
	for i := 1; i <= 50; i++ {
		must(stock.Insert(spi.Row{spi.Int(i), spi.I64(1_000_000)}))
		must(prices.Insert(spi.Row{spi.Int(i), spi.I64(int64(100 + i))}))
	}

	// Design-time analysis (§4): the partial execution of new_order
	// interferes with I1^o_num for its own order only; instances of
	// new_order never interfere with each other's assertions, so they may
	// interleave arbitrarily. bill requires I1^o_num as a precondition, so
	// its step interferes with nothing but must not slide between the steps
	// of the new_order building the same order — which the assertional lock
	// on the order's items enforces at run time.
	b := interference.NewBuilder()
	noTxn := b.TxnType("new_order", 0)
	billTxn := b.TxnType("bill", 1)
	no1 := b.StepType("new_order/setup")
	no2 := b.StepType("new_order/orderline")
	csNO := b.StepType("new_order/compensate")
	billStep := b.StepType("bill")
	aI1 := b.Assertion("I1")
	// new_order steps provably do not interfere with I1 of other instances
	// (they touch only their own order's rows); bill is read-mostly over the
	// order and writes only its price, which I1 does not mention.
	for _, s := range []interference.StepTypeID{no1, no2, csNO, billStep} {
		b.NoInterference(s, aI1)
	}
	// new_order steps may interleave with other new_orders and with bill's
	// single step; bill must NOT see new_order intermediate state (it would
	// bill a half-entered order), so it gets no interleave permission.
	for _, s := range []interference.StepTypeID{no1, no2, csNO} {
		b.AllowInterleaveEverywhere(s, noTxn)
		b.AllowInterleaveEverywhere(s, billTxn)
	}
	tables := b.Build()

	eng := core.New(db, tables, core.WithMode(core.ModeACC))

	colCount := counter.Schema().MustCol("current_order_number")
	colPrice := orders.Schema().MustCol("price")
	colLevel := stock.Schema().MustCol("s_level")
	colItemPrice := prices.Schema().MustCol("price")
	colFilled := orderlinesSchema.MustCol("filled")
	colOrdered := orderlinesSchema.MustCol("ordered")

	// I1^o_num instance footprint: the order's row and its orderlines
	// partition (closing the phantom window for the count).
	aOpen := &core.Assertion{
		ID:   aI1,
		Name: "I1",
		Covers: func(args any, item spi.Item) bool {
			a := args.(*newOrderArgs)
			if a.oNum == 0 {
				return false
			}
			key := spi.EncodeKey(spi.I64(a.oNum))
			return (item.Table == "orders" && item.Level == spi.LevelRow && item.Key == key) ||
				(item.Table == "orderlines" && item.Level == spi.LevelPartition && item.Key == key)
		},
	}

	eng.MustRegister(&core.TxnType{
		Name: "new_order",
		ID:   noTxn,
		MakeSteps: func(args any) []core.Step {
			a := args.(*newOrderArgs)
			steps := []core.Step{{
				Name: "setup", Type: no1,
				Body: func(tc *core.Ctx) error {
					a := tc.Args().(*newOrderArgs)
					err := tc.Update("counter", []spi.Value{spi.Int(0)}, func(row spi.Row) error {
						a.oNum = row[colCount].Int64()
						row[colCount] = spi.I64(a.oNum + 1)
						return nil
					})
					if err != nil {
						return err
					}
					return tc.Insert("orders", spi.Row{
						spi.I64(a.oNum), spi.I64(a.customer),
						spi.I64(int64(len(a.items))), spi.I64(0),
					})
				},
			}}
			for i := range a.items {
				i := i
				steps = append(steps, core.Step{
					Name: fmt.Sprintf("orderline[%d]", i), Type: no2,
					Pre: []*core.Assertion{aOpen},
					Body: func(tc *core.Ctx) error {
						a := tc.Args().(*newOrderArgs)
						if a.abortAt == i {
							return tc.Abort("customer cancelled")
						}
						var got int64
						err := tc.Update("stock", []spi.Value{spi.I64(a.items[i])}, func(row spi.Row) error {
							avail := row[colLevel].Int64()
							got = a.quants[i]
							if got > avail {
								got = avail
							}
							row[colLevel] = spi.I64(avail - got)
							return nil
						})
						if err != nil {
							return err
						}
						a.filled[i] = got
						return tc.Insert("orderlines", spi.Row{
							spi.I64(a.oNum), spi.I64(a.items[i]),
							spi.I64(a.quants[i]), spi.I64(got),
						})
					},
				})
			}
			return steps
		},
		Comp: &core.Compensation{
			Type: csNO,
			Body: func(tc *core.Ctx, completed int) error {
				// §4: return filled items to stock, remove the orderlines
				// and the order. The counter keeps its value — the order
				// number becomes a hole, exactly the paper's derived result.
				a := tc.Args().(*newOrderArgs)
				lines := completed - 1
				if lines > len(a.items) {
					lines = len(a.items)
				}
				for i := 0; i < lines; i++ {
					got := a.filled[i]
					err := tc.Update("stock", []spi.Value{spi.I64(a.items[i])}, func(row spi.Row) error {
						row[colLevel] = spi.I64(row[colLevel].Int64() + got)
						return nil
					})
					if err != nil {
						return err
					}
					if err := tc.Delete("orderlines", spi.I64(a.oNum), spi.I64(a.items[i])); err != nil {
						return err
					}
				}
				if completed >= 1 {
					if err := tc.Delete("orders", spi.I64(a.oNum)); err != nil &&
						!errors.Is(err, spi.ErrNotFound) {
						return err
					}
				}
				return nil
			},
		},
	})

	eng.MustRegister(&core.TxnType{
		Name: "bill",
		ID:   billTxn,
		Steps: []core.Step{{
			Name: "bill", Type: billStep,
			Pre: []*core.Assertion{{
				ID: aI1, Name: "I1(bill)",
				Covers: func(args any, item spi.Item) bool {
					ba := args.(*billArgs)
					key := spi.EncodeKey(spi.I64(ba.order))
					return (item.Table == "orders" && item.Level == spi.LevelRow && item.Key == key) ||
						(item.Table == "orderlines" && item.Level == spi.LevelPartition && item.Key == key)
				},
			}},
			Body: func(tc *core.Ctx) error {
				ba := tc.Args().(*billArgs)
				if _, err := tc.Get("orders", spi.I64(ba.order)); err != nil {
					if errors.Is(err, spi.ErrNotFound) {
						return nil // compensated order: nothing to bill
					}
					return err
				}
				total := int64(0)
				err := tc.ScanPartition("orderlines", []spi.Value{spi.I64(ba.order)}, func(row spi.Row) error {
					prow, err := tc.Get("prices", row[1])
					if err != nil {
						return err
					}
					total += prow[colItemPrice].Int64() * row[colFilled].Int64()
					_ = colOrdered
					return nil
				})
				if err != nil {
					return err
				}
				ba.total = total
				return tc.Update("orders", []spi.Value{spi.I64(ba.order)}, func(row spi.Row) error {
					row[colPrice] = spi.I64(total)
					return nil
				})
			},
		}},
	})

	// Drive a concurrent mix: many new_orders (some aborting mid-stream to
	// exercise compensation) and bills for already-entered orders.
	var wg sync.WaitGroup
	var mu sync.Mutex
	var billable []int64
	compensated := 0
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(int64(g) + 7))
			for j := 0; j < 40; j++ {
				n := 2 + r.Intn(4)
				a := &newOrderArgs{customer: int64(g), abortAt: -1, filled: make([]int64, n)}
				for k := 0; k < n; k++ {
					a.items = append(a.items, int64(1+r.Intn(50)))
					a.quants = append(a.quants, int64(1+r.Intn(5)))
				}
				// Avoid duplicate items within one order (composite PK).
				seen := map[int64]bool{}
				for k, it := range a.items {
					for seen[it] {
						it = (it % 50) + 1
					}
					seen[it] = true
					a.items[k] = it
				}
				if r.Intn(10) == 0 {
					a.abortAt = n - 1 // cancel while ordering the last item
				}
				err := eng.Run("new_order", a)
				switch {
				case err == nil:
					mu.Lock()
					billable = append(billable, a.oNum)
					mu.Unlock()
				case core.IsCompensated(err):
					mu.Lock()
					compensated++
					mu.Unlock()
				case errors.Is(err, core.ErrUserAbort):
					// aborted before any step completed
				default:
					log.Fatal(err)
				}
				// Bill a random completed order now and then.
				mu.Lock()
				var pick int64 = -1
				if len(billable) > 0 && r.Intn(2) == 0 {
					pick = billable[r.Intn(len(billable))]
				}
				mu.Unlock()
				if pick >= 0 {
					if err := eng.Run("bill", &billArgs{order: pick}); err != nil {
						log.Fatal(err)
					}
				}
			}
		}(g)
	}
	wg.Wait()

	// Quiescent validation: evaluate I1 formally, and check stock balance.
	ok, err := assertion.Eval(i1, db.Store(), nil)
	must(err)
	if !ok {
		log.Fatal("I1 violated at quiescence")
	}
	fmt.Printf("I1 = %s\n", i1)
	st := eng.Snapshot()
	fmt.Printf("commits=%d compensations=%d (orders table %d rows)\n",
		st.Commits, st.Compensations, orders.Len())
	fmt.Println("ok: I1 holds at quiescence; compensated orders left only numbering holes")
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
