// Stocktrade reproduces the paper's §3.1 motivating example: two concurrent
// buy transactions each purchase some shares at $30 and some at $31 even
// though enough $30 shares initially existed for either one alone — a state
// NO serial schedule can reach. Both transactions nevertheless satisfy
// their postcondition ("whenever a share was bought, no cheaper unbought
// share existed"), so the schedule is semantically correct; the program
// verifies the postcondition and demonstrates the non-serializability with
// the engine's conflict-graph checker.
package main

import (
	"fmt"
	"log"

	_ "accdb/internal/backends"
	"accdb/internal/core"
	"accdb/internal/interference"
	"accdb/internal/spi"
)

const (
	// Sell orders on the book: lots of shares at a price.
	tOrders = "sell_orders"
	// Ledger of executed purchases.
	tLedger = "ledger"
)

type buyArgs struct {
	buyer  string
	want   int64 // shares to buy
	bought int64 // work area: shares acquired so far
	spent  int64
	seq    int64 // ledger key allocator base
}

func main() {
	db := core.NewDB()
	orders := db.MustCreateTable(spi.MustSchema(tOrders, []spi.Column{
		{Name: "id", Kind: spi.KindInt},
		{Name: "price", Kind: spi.KindInt},
		{Name: "shares", Kind: spi.KindInt},
	}, "id"))
	db.MustCreateTable(spi.MustSchema(tLedger, []spi.Column{
		{Name: "entry", Kind: spi.KindInt},
		{Name: "buyer", Kind: spi.KindString},
		{Name: "price", Kind: spi.KindInt},
		{Name: "shares", Kind: spi.KindInt},
	}, "entry"))

	// The book: n=100 shares at $30, plenty at $31.
	must(orders.Insert(spi.Row{spi.Int(1), spi.I64(30), spi.I64(100)}))
	must(orders.Insert(spi.Row{spi.Int(2), spi.I64(31), spi.I64(10000)}))

	b := interference.NewBuilder()
	buyTxn := b.TxnType("buy", 2)
	grab := b.StepType("buy/grab") // one step per price level taken
	csBuy := b.StepType("buy/compensate")
	b.AllowInterleaveEverywhere(grab, buyTxn)
	b.AllowInterleaveEverywhere(csBuy, buyTxn)
	tables := b.Build()

	eng := core.New(db, tables, core.WithMode(core.ModeACC), core.WithRecordHistory(true))

	priceCol := orders.Schema().MustCol("price")
	sharesCol := orders.Schema().MustCol("shares")

	// grabStep buys up to chunk shares from the given order id; each grab is
	// its own atomic step, so two buyers can alternate price levels.
	grabStep := func(orderID, chunk int64) core.Step {
		return core.Step{
			Name: fmt.Sprintf("grab[%d]", orderID),
			Type: grab,
			Body: func(tc *core.Ctx) error {
				a := tc.Args().(*buyArgs)
				if a.bought >= a.want {
					return nil
				}
				var take, price int64
				err := tc.Update(tOrders, []spi.Value{spi.I64(orderID)}, func(row spi.Row) error {
					avail := row[sharesCol].Int64()
					price = row[priceCol].Int64()
					take = a.want - a.bought
					if take > chunk {
						take = chunk
					}
					if take > avail {
						take = avail
					}
					row[sharesCol] = spi.I64(avail - take)
					return nil
				})
				if err != nil || take == 0 {
					return err
				}
				a.seq++
				if err := tc.Insert(tLedger, spi.Row{
					spi.I64(a.seq), spi.Str(a.buyer),
					spi.I64(price), spi.I64(take),
				}); err != nil {
					return err
				}
				a.bought += take
				a.spent += take * price
				return nil
			},
		}
	}

	eng.MustRegister(&core.TxnType{
		Name:  "buy",
		ID:    buyTxn,
		Steps: []core.Step{grabStep(1, 50), grabStep(1, 50), grabStep(2, 100)},
		Comp: &core.Compensation{
			Type: csBuy,
			Body: func(tc *core.Ctx, completed int) error {
				return fmt.Errorf("stocktrade: buys never abort in this demo")
			},
		},
	})

	// Interleave T1 and T2 by hand through two goroutines synchronized so
	// the schedule is: T1 grabs 50@30, T2 grabs the remaining 50@30, T1
	// grabs 25@31, T2 grabs 25@31. A rendezvous after each step of T1 lets
	// T2's step slide in between — which the ACC permits because neither
	// invalidates the other's precondition.
	step1Done := make(chan struct{})
	t2Got30 := make(chan struct{})
	done := make(chan *buyArgs, 2)

	go func() {
		a := &buyArgs{buyer: "T1", want: 100, seq: 1000}
		eng.MustRegister(&core.TxnType{
			Name: "buyT1", ID: buyTxn,
			Steps: []core.Step{
				grabStep(1, 50),
				{Name: "pause", Type: grab, Body: func(*core.Ctx) error {
					close(step1Done)
					<-t2Got30
					return nil
				}},
				grabStep(1, 50),
				grabStep(2, 100),
			},
			Comp: &core.Compensation{Type: csBuy, Body: func(*core.Ctx, int) error { return nil }},
		})
		must(eng.Run("buyT1", a))
		done <- a
	}()
	go func() {
		<-step1Done
		a := &buyArgs{buyer: "T2", want: 100, seq: 2000}
		// T2 runs the plain two-step buy; its first step takes the rest of
		// the $30 shares while T1 is between steps.
		must(eng.Run("buy", a))
		close(t2Got30)
		done <- a
	}()

	a1, a2 := <-done, <-done
	fmt.Printf("%s bought %d shares for $%d\n", a1.buyer, a1.bought, a1.spent)
	fmt.Printf("%s bought %d shares for $%d\n", a2.buyer, a2.bought, a2.spent)

	// Postcondition Q_i for each buyer: all requested shares bought, and the
	// ledger never shows a purchase at $31 while $30 shares remained (each
	// buyer's own view at purchase time — guaranteed by step atomicity).
	if a1.bought != 100 || a2.bought != 100 {
		log.Fatal("postcondition violated: a buyer did not fill its order")
	}
	// Both buyers paid a mix of prices: the tell-tale non-serializable split
	// (a serial schedule gives one buyer all 100 cheap shares).
	mixed := func(a *buyArgs) bool { return a.spent != 100*30 && a.spent != 100*31 }
	if !mixed(a1) || !mixed(a2) {
		log.Fatal("expected both buyers to split across price levels")
	}
	if h := eng.History(); h.ConflictSerializable() {
		fmt.Println("note: this particular run happened to be serializable")
	} else {
		fmt.Println("the schedule is NOT conflict serializable — yet semantically correct")
	}
	fmt.Println("ok: the state is unreachable by any serial execution, and every buy met its spec")
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
