// Quickstart: a minimal bank built on the assertional concurrency control.
//
// It shows the whole public surface in one file: declare a schema, register
// the design-time interference tables, decompose a transaction into steps
// with an interstep assertion and a compensating step, run it under the ACC,
// and watch a legacy (undecomposed) transaction stay fully isolated.
package main

import (
	"fmt"
	"log"
	"sync"

	_ "accdb/internal/backends"
	"accdb/internal/core"
	"accdb/internal/interference"
	"accdb/internal/spi"
)

func main() {
	// 1. Schema: a single accounts table.
	db := core.NewDB()
	accounts := db.MustCreateTable(spi.MustSchema("accounts", []spi.Column{
		{Name: "id", Kind: spi.KindInt},
		{Name: "balance", Kind: spi.KindInt},
	}, "id"))
	for id := 1; id <= 4; id++ {
		if err := accounts.Insert(spi.Row{spi.Int(id), spi.I64(1000)}); err != nil {
			log.Fatal(err)
		}
	}

	// 2. Design time: register transaction, step and assertion types and
	// declare the interference analysis. transfer is decomposed into a
	// debit step and a credit step; between them the assertion "the debited
	// money is in flight to the target account" must stay true. Another
	// transfer's steps can never invalidate it (they only move their own
	// money), so transfers interleave freely; an audit is undecomposed and
	// must see no intermediate state.
	b := interference.NewBuilder()
	transferTxn := b.TxnType("transfer", 2)
	debit := b.StepType("transfer/debit")
	credit := b.StepType("transfer/credit")
	csTransfer := b.StepType("transfer/compensate")
	inFlight := b.Assertion("A_IN_FLIGHT")
	for _, s := range []interference.StepTypeID{debit, credit, csTransfer} {
		b.NoInterference(s, inFlight)
		b.AllowInterleaveEverywhere(s, transferTxn)
	}
	tables := b.Build()

	// 3. Engine over the tables; the baseline mode would run the same code
	// serializably.
	eng := core.New(db, tables, core.WithMode(core.ModeACC))

	balCol := accounts.Schema().MustCol("balance")
	type transferArgs struct{ from, to, amount int64 }
	add := func(tc *core.Ctx, id, delta int64) error {
		return tc.Update("accounts", []spi.Value{spi.I64(id)}, func(row spi.Row) error {
			row[balCol] = spi.I64(row[balCol].Int64() + delta)
			return nil
		})
	}

	aInFlight := &core.Assertion{
		ID:   inFlight,
		Name: "A_IN_FLIGHT",
		Covers: func(args any, item spi.Item) bool {
			a := args.(*transferArgs)
			return item.Table == "accounts" && item.Level == spi.LevelRow &&
				item.Key == spi.EncodeKey(spi.I64(a.from))
		},
	}

	eng.MustRegister(&core.TxnType{
		Name: "transfer",
		ID:   transferTxn,
		Steps: []core.Step{
			{
				Name: "debit", Type: debit,
				Body: func(tc *core.Ctx) error {
					a := tc.Args().(*transferArgs)
					return add(tc, a.from, -a.amount)
				},
			},
			{
				Name: "credit", Type: credit,
				Pre: []*core.Assertion{aInFlight},
				Body: func(tc *core.Ctx) error {
					a := tc.Args().(*transferArgs)
					return add(tc, a.to, a.amount)
				},
			},
		},
		Comp: &core.Compensation{
			Type: csTransfer,
			Body: func(tc *core.Ctx, completed int) error {
				a := tc.Args().(*transferArgs)
				if completed >= 1 {
					return add(tc, a.from, a.amount) // return the debited money
				}
				return nil
			},
		},
	})

	// 4. Run transfers concurrently; between a transfer's steps, other
	// transfers proceed (locks were released), yet the audit below always
	// balances.
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				args := &transferArgs{
					from:   int64(i%4 + 1),
					to:     int64((i+1)%4 + 1),
					amount: 7,
				}
				if err := eng.Run("transfer", args); err != nil {
					log.Fatal(err)
				}
			}
		}(i)
	}
	wg.Wait()

	// 5. A legacy audit: undecomposed, so the ACC isolates it completely —
	// it can never observe money in flight.
	var total int64
	err := eng.RunLegacy("audit", func(tc *core.Ctx) error {
		total = 0
		return tc.Scan("accounts", func(row spi.Row) error {
			total += row[balCol].Int64()
			return nil
		})
	})
	if err != nil {
		log.Fatal(err)
	}

	st := eng.Snapshot()
	fmt.Printf("total balance after %d commits: %d (want 4000)\n", st.Commits, total)
	if total != 4000 {
		log.Fatal("quickstart: money was lost — semantic correctness violated")
	}
	fmt.Println("ok: every transfer met its specification and the invariant held")
}
